// Golden-parity tests for the incremental eviction index (mem/eviction_index):
// on randomized residency/counter histories the index-backed fast path must
// pick the exact victim sequence of the reference scan for LRU, LFU and tree
// eviction — including the written-ever and protect-window tie-breaks, both
// counter granularities, and global counter halvings.
#include "mem/eviction.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/rng.hpp"

namespace uvmsim {
namespace {

constexpr Cycle kWindow = 512;

/// A (table, counters, manager) trio with the index attached — the driver's
/// wiring, minus the driver — plus a randomized-history driver.
class IndexHarness {
 public:
  IndexHarness(EvictionKind kind, std::uint64_t granularity, ChunkNum chunks,
               std::uint32_t counter_shift, std::uint64_t seed)
      : rng_(seed) {
    space_.allocate("a", chunks * kLargePageSize);
    table_ = std::make_unique<BlockTable>(space_);
    counters_ = std::make_unique<AccessCounterTable>(
        div_ceil(space_.span_end(), std::uint64_t{1} << counter_shift), counter_shift);
    manager_ = std::make_unique<EvictionManager>(kind, granularity);
    manager_->attach_index(*table_, *counters_);
  }

  BlockTable& table() { return *table_; }
  AccessCounterTable& counters() { return *counters_; }
  EvictionManager& manager() { return *manager_; }

  /// One random history step: migrations, touches, counter traffic, direct
  /// evictions and occasional Volta-style count resets.
  void random_step() {
    now_ += rng_.below(4);
    const BlockNum b = rng_.below(table_->num_blocks());
    switch (rng_.below(8)) {
      case 0:
      case 1: {  // migrate a host block in
        if (table_->block(b).residence == Residence::kHost) {
          table_->mark_in_flight(b);
          table_->mark_resident(b, now_);
        }
        break;
      }
      case 2:
      case 3: {  // touch (read or write)
        const AccessType t = rng_.chance(0.3) ? AccessType::kWrite : AccessType::kRead;
        table_->touch(b, t, now_);
        break;
      }
      case 4: {  // counter traffic; occasionally enough to force a halving
        const std::uint32_t n = rng_.chance(0.02)
                                    ? AccessCounterTable::kCountMax - 2
                                    : static_cast<std::uint32_t>(rng_.between(1, 64));
        counters_->record_access(addr_of_block(b), n);
        break;
      }
      case 5: {  // evict one resident block directly
        if (table_->block(b).residence == Residence::kDevice) {
          table_->mark_evicted(b);
          counters_->record_round_trip(addr_of_block(b));
        }
        break;
      }
      case 6: {  // Volta-style reset of a block's count fields
        if (rng_.chance(0.2)) counters_->reset_range(addr_of_block(b), kBasicBlockSize);
        break;
      }
      default: {  // apply a full selection round through the manager
        apply_one_selection();
        break;
      }
    }
  }

  /// select_victims through the manager (fast path), assert it matches the
  /// reference scan, then actually evict the victims — so the test walks an
  /// entire victim *sequence*, not independent one-shot picks.
  void apply_one_selection() {
    const VictimQuery q = random_query();
    const std::vector<BlockNum> fast = manager_->select_victims(*table_, *counters_, q);
    const std::vector<BlockNum> ref =
        manager_->select_victims_reference(*table_, *counters_, q);
    ASSERT_EQ(fast, ref) << "victim divergence at step " << steps_ << ", now=" << now_;
    for (const BlockNum v : fast) {
      table_->mark_evicted(v);
      counters_->record_round_trip(addr_of_block(v));
    }
    ++steps_;
  }

  /// Fast-vs-reference parity for a spread of queries at the current state.
  void check_parity() {
    for (const Cycle window : {Cycle{0}, kWindow}) {
      for (const ChunkNum fc : {ChunkNum{0}, table_->num_chunks() - 1}) {
        for (const bool has_fc : {false, true}) {
          const VictimQuery q{fc, has_fc, now_, window};
          EXPECT_EQ(manager_->select_victims(*table_, *counters_, q),
                    manager_->select_victims_reference(*table_, *counters_, q))
              << "window=" << window << " faulting=" << (has_fc ? fc : kNilChunk)
              << " now=" << now_;
        }
      }
    }
    check_aggregates();
  }

  /// Structural parity: membership, running frequencies, visitor agreement.
  void check_aggregates() {
    const EvictionIndex& idx = manager_->index();
    std::uint64_t listed = 0;
    for (ChunkNum c = 0; c < table_->num_chunks(); ++c) {
      ASSERT_EQ(idx.in_list(c), table_->chunk(c).resident_blocks > 0) << "chunk " << c;
      if (!idx.in_list(c)) continue;
      ++listed;
      EXPECT_EQ(idx.frequency(c), LfuEviction::chunk_frequency(c, *table_, *counters_))
          << "chunk " << c;
      std::vector<BlockNum> visited;
      table_->for_each_resident_block(c, [&](BlockNum b) { visited.push_back(b); });
      // Reference: a plain scan over the chunk's mapped block range.
      std::vector<BlockNum> expected;
      const BlockNum first = first_block_of_chunk(c);
      for (BlockNum b = first; b < first + table_->chunk_num_blocks(c); ++b) {
        if (table_->residence(b) == Residence::kDevice) expected.push_back(b);
      }
      EXPECT_EQ(visited, expected) << "chunk " << c;
    }
    EXPECT_EQ(idx.size(), listed);
  }

  [[nodiscard]] Cycle now() const { return now_; }

 private:
  [[nodiscard]] VictimQuery random_query() {
    VictimQuery q;
    q.has_faulting_chunk = rng_.chance(0.5);
    q.faulting_chunk = rng_.below(table_->num_chunks());
    q.now = now_;
    q.protect_window = rng_.chance(0.5) ? kWindow : 0;
    return q;
  }

  AddressSpace space_;
  std::unique_ptr<BlockTable> table_;
  std::unique_ptr<AccessCounterTable> counters_;
  std::unique_ptr<EvictionManager> manager_;
  Rng rng_;
  Cycle now_ = 1;
  std::uint64_t steps_ = 0;
};

void run_history(IndexHarness& h, int steps) {
  for (int i = 0; i < steps; ++i) {
    h.random_step();
    if (i % 16 == 0) h.check_parity();
  }
  h.check_parity();
}

TEST(EvictionIndexParity, RandomizedLruHistory) {
  IndexHarness h(EvictionKind::kLru, kLargePageSize, 8, 16, 0xA11CE);
  run_history(h, 600);
}

TEST(EvictionIndexParity, RandomizedLfuHistory) {
  IndexHarness h(EvictionKind::kLfu, kLargePageSize, 8, 16, 0xB0B);
  run_history(h, 600);
}

TEST(EvictionIndexParity, RandomizedTreeHistory) {
  IndexHarness h(EvictionKind::kTree, kLargePageSize, 8, 16, 0xCAFE);
  run_history(h, 600);
}

TEST(EvictionIndexParity, RandomizedLfuWith4kCounters) {
  IndexHarness h(EvictionKind::kLfu, kLargePageSize, 6, 12, 0xD00D);
  run_history(h, 400);
}

TEST(EvictionIndexParity, RandomizedLruBlockGranularity) {
  // 64 KB eviction granularity exercises the coldest-block emission path.
  IndexHarness h(EvictionKind::kLru, kBasicBlockSize, 6, 16, 0xFEED);
  run_history(h, 400);
}

TEST(EvictionIndexParity, RandomizedLfuBlockGranularity) {
  IndexHarness h(EvictionKind::kLfu, kBasicBlockSize, 6, 16, 0xBEEF);
  run_history(h, 400);
}

TEST(EvictionIndexParity, HalvingMarksAggregatesStaleThenRebuilds) {
  IndexHarness h(EvictionKind::kLfu, kLargePageSize, 4, 16, 1);
  BlockTable& table = h.table();
  for (BlockNum b : {BlockNum{0}, BlockNum{1}, first_block_of_chunk(1)}) {
    table.mark_in_flight(b);
    table.mark_resident(b, 10);
  }
  h.counters().record_access(addr_of_block(0), 100);
  EXPECT_FALSE(h.manager().index().frequencies_stale());
  h.counters().halve_all();
  EXPECT_TRUE(h.manager().index().frequencies_stale());
  // The lazy rebuild must land on the reference recomputation.
  EXPECT_EQ(h.manager().index().frequency(0),
            LfuEviction::chunk_frequency(0, table, h.counters()));
  EXPECT_FALSE(h.manager().index().frequencies_stale());
  h.check_parity();
}

// Regression (stale-aggregate window): a global counter halving can REORDER
// the LFU ranking — floor division collapses 3 vs 2 into a tie that then
// falls to recency. A selection issued immediately after halve_all, with no
// intervening touch to refresh the index, must consult the lazily rebuilt
// aggregates, never the stale pre-halving ones.
TEST(EvictionIndexParity, HalveThenImmediateSelectUsesRebuiltAggregates) {
  IndexHarness h(EvictionKind::kLfu, kLargePageSize, 4, 16, 4);
  BlockTable& table = h.table();
  for (ChunkNum c : {ChunkNum{0}, ChunkNum{1}}) {
    const BlockNum first = first_block_of_chunk(c);
    for (BlockNum b = first; b < first + kBlocksPerLargePage; ++b) {
      table.mark_in_flight(b);
      table.mark_resident(b, 10);
      table.touch(b, AccessType::kRead, 10 + c);  // chunk 0 older than chunk 1
    }
  }
  h.counters().record_access(addr_of_block(first_block_of_chunk(0)), 3);
  h.counters().record_access(addr_of_block(first_block_of_chunk(1)), 2);

  // Pre-halving the ranking is unambiguous: chunk 1 (frequency 2) loses.
  const VictimQuery q{3, true, 100, 0};
  const auto before = h.manager().select_victims(table, h.counters(), q);
  ASSERT_FALSE(before.empty());
  EXPECT_EQ(chunk_of_block(before.front()), 1u);

  h.counters().halve_all();
  ASSERT_TRUE(h.manager().index().frequencies_stale());

  // 3 and 2 both halve to 1: the tie now falls to recency, which chunk 0
  // (older) loses. Stale aggregates would still name chunk 1.
  const auto fast = h.manager().select_victims(table, h.counters(), q);
  const auto ref = h.manager().select_victims_reference(table, h.counters(), q);
  ASSERT_FALSE(fast.empty());
  EXPECT_EQ(fast, ref);
  EXPECT_EQ(chunk_of_block(fast.front()), 0u);
  for (ChunkNum c : {ChunkNum{0}, ChunkNum{1}}) {
    EXPECT_EQ(h.manager().index().frequency(c),
              LfuEviction::chunk_frequency(c, table, h.counters()))
        << "chunk " << c;
  }
  h.check_parity();
}

TEST(EvictionIndexParity, WrittenEverTieBreakMatchesReference) {
  IndexHarness h(EvictionKind::kLfu, kLargePageSize, 4, 16, 2);
  BlockTable& table = h.table();
  // Two fully-resident chunks, identical frequency; chunk 0 written (later),
  // chunk 1 read-only but more recent: LFU must evict the read-only one.
  for (ChunkNum c : {ChunkNum{0}, ChunkNum{1}}) {
    const BlockNum first = first_block_of_chunk(c);
    for (BlockNum b = first; b < first + kBlocksPerLargePage; ++b) {
      table.mark_in_flight(b);
      table.mark_resident(b, 10);
      table.touch(b, AccessType::kRead, 10 + c);
    }
    h.counters().record_access(c * kLargePageSize, 25);
  }
  table.touch(first_block_of_chunk(0), AccessType::kWrite, 20);
  const VictimQuery q{2, true, h.now(), 0};
  const auto fast = h.manager().select_victims(table, h.counters(), q);
  ASSERT_FALSE(fast.empty());
  EXPECT_EQ(chunk_of_block(fast.front()), 1u);
  EXPECT_EQ(fast, h.manager().select_victims_reference(table, h.counters(), q));
}

TEST(EvictionIndexParity, ProtectWindowBusySuffixMatchesReference) {
  IndexHarness h(EvictionKind::kLru, kLargePageSize, 4, 16, 3);
  BlockTable& table = h.table();
  const Cycle now = 10000;
  // Chunk 0: old (evictable). Chunks 1, 2: accessed within the window (busy).
  for (ChunkNum c : {ChunkNum{0}, ChunkNum{1}, ChunkNum{2}}) {
    const BlockNum first = first_block_of_chunk(c);
    for (BlockNum b = first; b < first + kBlocksPerLargePage; ++b) {
      table.mark_in_flight(b);
      table.mark_resident(b, 100);
      table.touch(b, AccessType::kRead, c == 0 ? 100 : now - kWindow / 2);
    }
  }
  const VictimQuery protected_q{3, true, now, kWindow};
  const auto fast = h.manager().select_victims(table, h.counters(), protected_q);
  ASSERT_FALSE(fast.empty());
  EXPECT_EQ(chunk_of_block(fast.front()), 0u);
  EXPECT_EQ(fast, h.manager().select_victims_reference(table, h.counters(), protected_q));

  // Evict chunk 0 entirely: only busy chunks remain, and the busy-fallback
  // pick must still match the reference (lowest last_access, then chunk id).
  for (const BlockNum v : fast) table.mark_evicted(v);
  const auto busy_fast = h.manager().select_victims(table, h.counters(), protected_q);
  const auto busy_ref =
      h.manager().select_victims_reference(table, h.counters(), protected_q);
  ASSERT_FALSE(busy_fast.empty());
  EXPECT_EQ(busy_fast, busy_ref);
  EXPECT_EQ(chunk_of_block(busy_fast.front()), 1u);
}

TEST(EvictionIndexParity, DetachedManagerStillUsesReferenceScan) {
  // No attach_index: hand-built tables keep working through the fallback.
  AddressSpace space;
  space.allocate("a", 2 * kLargePageSize);
  BlockTable table(space);
  AccessCounterTable counters(64, 16);
  EvictionManager mgr(EvictionKind::kLru, kLargePageSize);
  EXPECT_FALSE(mgr.index().attached());
  for (BlockNum b = 0; b < kBlocksPerLargePage; ++b) {
    table.mark_in_flight(b);
    table.mark_resident(b, 5);
  }
  const auto victims = mgr.select_victims(table, counters, VictimQuery{0, false, 10, 0});
  EXPECT_EQ(victims.size(), kBlocksPerLargePage);
}

}  // namespace
}  // namespace uvmsim
