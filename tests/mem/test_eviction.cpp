#include "mem/eviction.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

class EvictionTest : public ::testing::Test {
 protected:
  EvictionTest() : counters_(64, 16) {
    space_.allocate("a", 4 * kLargePageSize);  // chunks 0..3
    table_ = std::make_unique<BlockTable>(space_);
  }

  void make_resident(ChunkNum c, std::uint32_t blocks, Cycle when) {
    const BlockNum first = first_block_of_chunk(c);
    for (BlockNum b = first; b < first + blocks; ++b) {
      table_->mark_in_flight(b);
      table_->mark_resident(b, when);
      table_->touch(b, AccessType::kRead, when);
    }
  }

  void add_accesses(ChunkNum c, std::uint32_t n) {
    counters_.record_access(c * kLargePageSize, n);
  }

  AddressSpace space_;
  std::unique_ptr<BlockTable> table_;
  AccessCounterTable counters_;
};

TEST_F(EvictionTest, LruPicksOldest) {
  make_resident(0, 32, 100);
  make_resident(1, 32, 50);
  make_resident(2, 32, 200);
  LruEviction lru;
  EXPECT_EQ(lru.pick({0, 1, 2}, *table_, counters_), 1u);
}

TEST_F(EvictionTest, LruFollowsRecencyUpdates) {
  make_resident(0, 32, 10);
  make_resident(1, 32, 20);
  table_->touch(first_block_of_chunk(0), AccessType::kRead, 500);  // 0 becomes MRU
  LruEviction lru;
  EXPECT_EQ(lru.pick({0, 1}, *table_, counters_), 1u);
}

TEST_F(EvictionTest, LfuPicksColdest) {
  make_resident(0, 32, 10);
  make_resident(1, 32, 20);
  add_accesses(0, 1000);
  add_accesses(1, 3);
  LfuEviction lfu;
  EXPECT_EQ(lfu.pick({0, 1}, *table_, counters_), 1u);
}

TEST_F(EvictionTest, LfuFallsBackToLruOnUniformFrequency) {
  make_resident(0, 32, 100);
  make_resident(1, 32, 50);
  add_accesses(0, 10);
  add_accesses(1, 10);
  LfuEviction lfu;
  // Equal frequency, neither written: recency breaks the tie = LRU.
  EXPECT_EQ(lfu.pick({0, 1}, *table_, counters_), 1u);
}

TEST_F(EvictionTest, LfuPrefersReadOnlyOnFrequencyTie) {
  make_resident(0, 32, 10);
  make_resident(1, 32, 20);
  add_accesses(0, 10);
  add_accesses(1, 10);
  table_->touch(first_block_of_chunk(0), AccessType::kWrite, 30);  // chunk 0 written
  LfuEviction lfu;
  // Chunk 1 is read-only; despite being more recent, it goes first.
  EXPECT_EQ(lfu.pick({0, 1}, *table_, counters_), 1u);
}

TEST_F(EvictionTest, LfuFrequencyCountsOnlyResidentBlocks) {
  make_resident(0, 2, 10);  // only 2 blocks resident
  add_accesses(0, 100);     // counts land on block 0 of chunk 0
  counters_.record_access(addr_of_block(first_block_of_chunk(0) + 10), 999);
  // Block +10 is not resident; still counted? It is resident? No.
  const auto freq = LfuEviction::chunk_frequency(0, *table_, counters_);
  EXPECT_EQ(freq, 100u);
}

TEST_F(EvictionTest, ManagerPrefersFullyPopulatedChunks) {
  make_resident(0, 16, 10);   // partial, oldest
  make_resident(1, 32, 500);  // full, newest
  EvictionManager mgr(EvictionKind::kLru, kLargePageSize);
  const auto victims = mgr.select_victims(*table_, counters_, VictimQuery{});
  ASSERT_EQ(victims.size(), 32u);
  EXPECT_EQ(chunk_of_block(victims.front()), 1u);
}

TEST_F(EvictionTest, ManagerFallsBackToPartialChunks) {
  make_resident(0, 5, 10);
  EvictionManager mgr(EvictionKind::kLru, kLargePageSize);
  const auto victims = mgr.select_victims(*table_, counters_, VictimQuery{});
  EXPECT_EQ(victims.size(), 5u);
}

TEST_F(EvictionTest, ManagerExcludesFaultingChunk) {
  make_resident(0, 32, 10);
  EvictionManager mgr(EvictionKind::kLru, kLargePageSize);
  const auto victims = mgr.select_victims(*table_, counters_, VictimQuery{0, true});
  EXPECT_TRUE(victims.empty());
}

TEST_F(EvictionTest, ManagerReturnsEmptyWhenNothingResident) {
  EvictionManager mgr(EvictionKind::kLru, kLargePageSize);
  EXPECT_TRUE(mgr.select_victims(*table_, counters_, VictimQuery{}).empty());
}

TEST_F(EvictionTest, BlockGranularityEvictsSingleColdestBlock) {
  make_resident(0, 32, 10);
  // Make block 5 of chunk 0 hot, everything else cold.
  for (BlockNum b = 0; b < 32; ++b) {
    counters_.record_access(addr_of_block(b), b == 5 ? 1000u : 10u);
  }
  // Break cold ties by recency: make block 7 least recently used.
  for (BlockNum b = 0; b < 32; ++b) {
    table_->touch(b, AccessType::kRead, b == 7 ? 1u : 100u);
  }
  EvictionManager mgr(EvictionKind::kLfu, kBasicBlockSize);
  const auto victims = mgr.select_victims(*table_, counters_, VictimQuery{});
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims.front(), 7u);
}

TEST(EvictionFactory, MakesRequestedPolicies) {
  EXPECT_EQ(make_eviction_policy(EvictionKind::kLru)->name(), "LRU");
  EXPECT_EQ(make_eviction_policy(EvictionKind::kLfu)->name(), "LFU");
}

}  // namespace
}  // namespace uvmsim
