#include "mem/block_table.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace uvmsim {
namespace {

class BlockTableTest : public ::testing::Test {
 protected:
  BlockTableTest() {
    space_.allocate("a", 2 * kLargePageSize);  // blocks 0..63, chunks 0..1
    table_ = std::make_unique<BlockTable>(space_);
  }
  AddressSpace space_;
  std::unique_ptr<BlockTable> table_;
};

TEST_F(BlockTableTest, StartsHostResident) {
  for (BlockNum b = 0; b < table_->num_blocks(); ++b) {
    EXPECT_EQ(table_->block(b).residence, Residence::kHost);
    EXPECT_FALSE(table_->block(b).dirty);
    EXPECT_EQ(table_->block(b).round_trips, 0u);
  }
  EXPECT_EQ(table_->chunk(0).resident_blocks, 0u);
}

TEST_F(BlockTableTest, MigrationLifecycle) {
  table_->mark_in_flight(3);
  EXPECT_EQ(table_->block(3).residence, Residence::kInFlight);
  table_->mark_resident(3, 100);
  EXPECT_EQ(table_->block(3).residence, Residence::kDevice);
  EXPECT_EQ(table_->chunk(0).resident_blocks, 1u);
  EXPECT_EQ(table_->chunk(0).migrated_at, 100u);

  const bool dirty = table_->mark_evicted(3);
  EXPECT_FALSE(dirty);
  EXPECT_EQ(table_->block(3).residence, Residence::kHost);
  EXPECT_EQ(table_->block(3).round_trips, 1u);
  EXPECT_EQ(table_->chunk(0).resident_blocks, 0u);
}

TEST_F(BlockTableTest, WriteWhileResidentMakesDirty) {
  table_->mark_in_flight(0);
  table_->mark_resident(0, 10);
  table_->touch(0, AccessType::kWrite, 20);
  EXPECT_TRUE(table_->block(0).dirty);
  EXPECT_TRUE(table_->block(0).written_ever);
  EXPECT_TRUE(table_->chunk(0).written_ever);
  EXPECT_TRUE(table_->mark_evicted(0));  // dirty -> writeback required
}

TEST_F(BlockTableTest, WriteWhileOnHostIsNotDirty) {
  table_->touch(5, AccessType::kWrite, 20);
  EXPECT_FALSE(table_->block(5).dirty);
  EXPECT_TRUE(table_->block(5).written_ever);
}

TEST_F(BlockTableTest, TouchUpdatesRecency) {
  table_->touch(0, AccessType::kRead, 42);
  EXPECT_EQ(table_->block(0).last_access, 42u);
  EXPECT_EQ(table_->chunk(0).last_access, 42u);
  table_->touch(33, AccessType::kRead, 50);  // chunk 1
  EXPECT_EQ(table_->chunk(1).last_access, 50u);
  EXPECT_EQ(table_->chunk(0).last_access, 42u);
}

TEST_F(BlockTableTest, IllegalTransitionsThrow) {
  EXPECT_THROW(table_->mark_resident(0, 1), std::logic_error);  // not in flight
  EXPECT_THROW(table_->mark_evicted(0), std::logic_error);      // not resident
  table_->mark_in_flight(0);
  EXPECT_THROW(table_->mark_in_flight(0), std::logic_error);    // double in-flight
}

TEST_F(BlockTableTest, EvictionClearsDirtyForNextRound) {
  table_->mark_in_flight(1);
  table_->mark_resident(1, 5);
  table_->touch(1, AccessType::kWrite, 6);
  table_->mark_evicted(1);
  table_->mark_in_flight(1);
  table_->mark_resident(1, 10);
  EXPECT_FALSE(table_->block(1).dirty);
  EXPECT_FALSE(table_->mark_evicted(1));
}

TEST_F(BlockTableTest, ChunkFullyResident) {
  EXPECT_FALSE(table_->chunk_fully_resident(0));
  for (BlockNum b = 0; b < kBlocksPerLargePage; ++b) {
    table_->mark_in_flight(b);
    table_->mark_resident(b, 1);
  }
  EXPECT_TRUE(table_->chunk_fully_resident(0));
  table_->mark_evicted(7);
  EXPECT_FALSE(table_->chunk_fully_resident(0));
}

TEST_F(BlockTableTest, ResidentBlocksOfChunk) {
  table_->mark_in_flight(2);
  table_->mark_resident(2, 1);
  table_->mark_in_flight(9);
  table_->mark_resident(9, 1);
  std::vector<BlockNum> blocks;
  table_->for_each_resident_block(0, [&](BlockNum b) { blocks.push_back(b); });
  EXPECT_EQ(blocks, (std::vector<BlockNum>{2, 9}));
  blocks.clear();
  table_->for_each_resident_block(1, [&](BlockNum b) { blocks.push_back(b); });
  EXPECT_TRUE(blocks.empty());
}

TEST(BlockTablePartialChunk, FullyResidentUsesMappedCount) {
  AddressSpace space;
  space.allocate("a", 256 * 1024);  // one chunk with 4 blocks
  BlockTable t(space);
  for (BlockNum b = 0; b < 4; ++b) {
    t.mark_in_flight(b);
    t.mark_resident(b, 1);
  }
  EXPECT_TRUE(t.chunk_fully_resident(0));
}

// Boundary sweep: the chunk axis must cover exactly the mapped blocks — no
// phantom trailing chunk past the last block, none at all for an empty
// space, and a cached per-chunk block count that agrees with the address
// space at every index including the final partially-mapped chunk.

TEST(BlockTableBoundary, EmptySpaceHasNoChunks) {
  AddressSpace space;
  BlockTable t(space);
  EXPECT_EQ(t.num_blocks(), 0u);
  EXPECT_EQ(t.num_chunks(), 0u);
}

TEST(BlockTableBoundary, ExactChunkMultipleHasNoPhantomChunk) {
  AddressSpace space;
  space.allocate("a", kLargePageSize);  // exactly one chunk, 32 blocks
  BlockTable t(space);
  EXPECT_EQ(t.num_blocks(), kBlocksPerLargePage);
  EXPECT_EQ(t.num_chunks(), 1u);
  EXPECT_EQ(t.chunk_num_blocks(0), kBlocksPerLargePage);
}

TEST(BlockTableBoundary, SingleBlockSpaceHasOneChunk) {
  AddressSpace space;
  space.allocate("a", kBasicBlockSize);
  BlockTable t(space);
  // The VA span is padded to the next 2 MB boundary, so the block axis
  // covers the whole chunk — but only one block of it is mapped.
  EXPECT_EQ(t.num_blocks(), kBlocksPerLargePage);
  EXPECT_EQ(t.num_chunks(), 1u);
  EXPECT_EQ(t.chunk_num_blocks(0), 1u);
  EXPECT_FALSE(t.chunk_fully_resident(0));
  t.mark_in_flight(0);
  t.mark_resident(0, 1);
  EXPECT_TRUE(t.chunk_fully_resident(0));
}

TEST(BlockTableBoundary, FinalPartialChunkCountsAndResidency) {
  // A 3-block user tail rounds up to a 4-block mapped tail (partial chunks
  // are padded to a power-of-two block count).
  AddressSpace space;
  space.allocate("a", kLargePageSize + 3 * kBasicBlockSize);
  BlockTable t(space);
  ASSERT_EQ(t.num_chunks(), 2u);
  for (ChunkNum c = 0; c < t.num_chunks(); ++c) {
    EXPECT_EQ(t.chunk_num_blocks(c), space.chunk_num_blocks(c)) << "chunk " << c;
  }
  ASSERT_EQ(t.chunk_num_blocks(1), 4u);

  // The tail chunk reaches fully-resident at its mapped count, not at 32.
  const BlockNum first = first_block_of_chunk(1);
  for (BlockNum b = first; b < first + 4; ++b) {
    EXPECT_FALSE(t.chunk_fully_resident(1));
    t.mark_in_flight(b);
    t.mark_resident(b, 1);
  }
  EXPECT_TRUE(t.chunk_fully_resident(1));

  // for_each_resident_block stays inside the mapped range of the tail chunk.
  std::vector<BlockNum> visited;
  t.for_each_resident_block(1, [&](BlockNum b) { visited.push_back(b); });
  EXPECT_EQ(visited, (std::vector<BlockNum>{first, first + 1, first + 2, first + 3}));

  // Evicting one tail block drops the flag again (aggregate bookkeeping).
  t.mark_evicted(first + 1);
  EXPECT_FALSE(t.chunk_fully_resident(1));
  EXPECT_EQ(t.chunk(1).resident_blocks, 3u);
}

}  // namespace
}  // namespace uvmsim
