#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace uvmsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BetweenIsInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(13);
  std::array<int, 8> buckets{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++buckets[r.below(8)];
  for (int b : buckets) {
    EXPECT_NEAR(b, kDraws / 8, kDraws / 80);  // within 10 %
  }
}

TEST(Rng, ChanceRespectsProbability) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, ZipfPrefersSmallRanks) {
  Rng r(19);
  std::uint64_t low = 0, high = 0;
  constexpr std::uint64_t kN = 1000;
  for (int i = 0; i < 50000; ++i) {
    const auto v = r.zipf(kN, 0.8);
    ASSERT_LT(v, kN);
    if (v < kN / 10) ++low;
    if (v >= 9 * kN / 10) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(Rng, ZipfAlphaZeroIsUniform) {
  Rng r(23);
  std::uint64_t low = 0;
  for (int i = 0; i < 50000; ++i) {
    if (r.zipf(1000, 0.0) < 100) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / 50000.0, 0.1, 0.02);
}

TEST(Rng, ZipfHandlesDegenerateSizes) {
  Rng r(29);
  EXPECT_EQ(r.zipf(0, 1.0), 0u);
  EXPECT_EQ(r.zipf(1, 1.0), 0u);
}

TEST(Splitmix, AdvancesStateAndIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  const auto a = splitmix64(s1);
  const auto b = splitmix64(s2);
  EXPECT_EQ(a, b);
  EXPECT_NE(s1, 42u);
  EXPECT_NE(splitmix64(s1), a);
}

TEST(Rng, ReseedReproducesSequence) {
  Rng r(5);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(r.next());
  r.reseed(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.next(), first[static_cast<std::size_t>(i)]);
}

}  // namespace
}  // namespace uvmsim
