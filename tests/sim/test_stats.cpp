#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(Stats, DefaultsToZero) {
  const SimStats s;
  EXPECT_EQ(s.total_accesses, 0u);
  EXPECT_EQ(s.far_faults, 0u);
  EXPECT_EQ(s.pages_thrashed, 0u);
  EXPECT_EQ(s.kernel_cycles, 0u);
}

TEST(Stats, AccumulateSumsEveryField) {
  SimStats a;
  a.total_accesses = 10;
  a.local_accesses = 5;
  a.remote_accesses = 3;
  a.far_faults = 2;
  a.blocks_migrated = 4;
  a.pages_thrashed = 32;
  a.kernel_cycles = 100;

  SimStats b;
  b.total_accesses = 1;
  b.local_accesses = 1;
  b.remote_accesses = 1;
  b.far_faults = 1;
  b.blocks_migrated = 1;
  b.pages_thrashed = 16;
  b.kernel_cycles = 50;

  a.accumulate(b);
  EXPECT_EQ(a.total_accesses, 11u);
  EXPECT_EQ(a.local_accesses, 6u);
  EXPECT_EQ(a.remote_accesses, 4u);
  EXPECT_EQ(a.far_faults, 3u);
  EXPECT_EQ(a.blocks_migrated, 5u);
  EXPECT_EQ(a.pages_thrashed, 48u);
  EXPECT_EQ(a.kernel_cycles, 150u);
}

TEST(Stats, ReportContainsHeadlineNumbers) {
  SimStats s;
  s.total_accesses = 1234;
  s.far_faults = 56;
  s.pages_thrashed = 789;
  const std::string r = s.report();
  EXPECT_NE(r.find("1234"), std::string::npos);
  EXPECT_NE(r.find("56"), std::string::npos);
  EXPECT_NE(r.find("789"), std::string::npos);
  EXPECT_NE(r.find("thrashed"), std::string::npos);
}

}  // namespace
}  // namespace uvmsim
