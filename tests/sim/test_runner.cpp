// Batch-run engine: request-based API, error isolation, the input cache,
// and the serial-vs-parallel determinism guarantee.
#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "workloads/input_cache.hpp"

namespace uvmsim {
namespace {

SimConfig small_cfg(PolicyKind policy = PolicyKind::kAdaptive) {
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  cfg.policy.policy = policy;
  cfg.mem.eviction =
      policy == PolicyKind::kFirstTouch ? EvictionKind::kLru : EvictionKind::kLfu;
  return cfg;
}

RunRequest small_request(const std::string& workload, double oversub,
                         std::uint64_t seed = 0x5eedull) {
  RunRequest req;
  req.workload = workload;
  req.params.scale = 0.05;
  req.params.seed = seed;
  req.config = small_cfg();
  req.oversub = oversub;
  return req;
}

TEST(Runner, RunRequestMatchesRunWorkload) {
  const RunRequest req = small_request("ra", 1.25);
  const RunResult via_request = run_request(req);
  const RunResult via_wrapper =
      run_workload(req.workload, req.config, req.oversub, req.params);
  EXPECT_EQ(via_request.stats, via_wrapper.stats);
  EXPECT_EQ(via_request.footprint_bytes, via_wrapper.footprint_bytes);
  EXPECT_EQ(via_request.capacity_bytes, via_wrapper.capacity_bytes);
}

TEST(Runner, BatchPreservesRequestOrderAndTelemetry) {
  std::vector<RunRequest> reqs{small_request("ra", 1.25), small_request("hotspot", 0.0)};
  reqs[0].label = "first";
  reqs[1].label = "second";

  const BatchResult batch = run_batch(reqs, {});
  ASSERT_EQ(batch.entries.size(), 2u);
  EXPECT_TRUE(batch.all_ok());
  EXPECT_EQ(batch.entries[0].request.label, "first");
  EXPECT_EQ(batch.entries[0].request.workload, "ra");
  EXPECT_EQ(batch.entries[1].request.label, "second");
  for (const BatchEntry& e : batch.entries) {
    EXPECT_GT(e.wall_ms, 0.0);
    EXPECT_GT(e.peak_footprint_bytes, 0u);
    EXPECT_EQ(e.peak_footprint_bytes, e.result.footprint_bytes);
  }
  EXPECT_GE(batch.wall_ms, 0.0);
  EXPECT_GE(batch.peak_footprint_bytes, batch.entries[0].peak_footprint_bytes);
}

TEST(Runner, FailedRunIsIsolatedFromTheBatch) {
  std::vector<RunRequest> reqs{small_request("ra", 1.25),
                               small_request("no-such-workload", 1.25),
                               small_request("hotspot", 0.0)};
  const BatchResult batch = run_batch(reqs, {});
  ASSERT_EQ(batch.entries.size(), 3u);
  EXPECT_EQ(batch.failed, 1u);
  EXPECT_FALSE(batch.all_ok());
  EXPECT_TRUE(batch.entries[0].ok());
  EXPECT_FALSE(batch.entries[1].ok());
  EXPECT_FALSE(batch.entries[1].error.empty());
  EXPECT_TRUE(batch.entries[2].ok());
  EXPECT_GT(batch.entries[2].result.stats.total_accesses, 0u);
}

TEST(Runner, ProgressCallbackSeesEveryCompletion) {
  std::vector<RunRequest> reqs{small_request("ra", 1.25), small_request("ra", 1.5),
                               small_request("hotspot", 0.0)};
  BatchOptions opts;
  opts.jobs = 2;
  std::atomic<std::size_t> calls{0};
  std::set<std::size_t> done_values;
  std::mutex m;
  opts.on_done = [&](const BatchEntry& e, std::size_t done, std::size_t total) {
    EXPECT_EQ(total, 3u);
    EXPECT_TRUE(e.ok());
    calls.fetch_add(1);
    const std::lock_guard<std::mutex> lock(m);
    done_values.insert(done);
  };
  const BatchResult batch = run_batch(reqs, opts);
  EXPECT_EQ(calls.load(), 3u);
  // `done` counts 1..total with no duplicates (callbacks are serialized).
  EXPECT_EQ(done_values, (std::set<std::size_t>{1, 2, 3}));
  EXPECT_EQ(batch.jobs, 2u);
}

// The determinism guarantee: a serial batch and a 4-worker batch over the
// same seed grid produce identical SimStats per entry.
TEST(Runner, ParallelBatchIsBitIdenticalToSerial) {
  std::vector<RunRequest> reqs;
  for (const std::uint64_t seed : {1ull, 2ull}) {
    reqs.push_back(small_request("bfs", 1.25, seed));
    reqs.push_back(small_request("ra", 1.25, seed));
    reqs.push_back(small_request("sssp", 1.25, seed));
    reqs.push_back(small_request("fdtd", 0.0, seed));
  }

  BatchOptions serial;
  serial.jobs = 1;
  BatchOptions parallel;
  parallel.jobs = 4;
  const BatchResult a = run_batch(reqs, serial);
  const BatchResult b = run_batch(reqs, parallel);

  ASSERT_EQ(a.entries.size(), b.entries.size());
  EXPECT_EQ(a.jobs, 1u);
  EXPECT_EQ(b.jobs, 4u);
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    ASSERT_TRUE(a.entries[i].ok()) << a.entries[i].error;
    ASSERT_TRUE(b.entries[i].ok()) << b.entries[i].error;
    EXPECT_EQ(a.entries[i].result.stats, b.entries[i].result.stats)
        << "entry " << i << " (" << reqs[i].workload << ") diverged";
    EXPECT_EQ(a.entries[i].result.footprint_bytes, b.entries[i].result.footprint_bytes);
    EXPECT_EQ(a.entries[i].result.capacity_bytes, b.entries[i].result.capacity_bytes);
    EXPECT_EQ(a.entries[i].result.kernels.size(), b.entries[i].result.kernels.size());
  }
}

// Concurrent runs of the same workload+scale share one generated input.
TEST(Runner, InputCacheIsSharedAcrossConcurrentRuns) {
  input_cache_clear();
  const InputCacheStats before = input_cache_stats();

  std::vector<RunRequest> reqs(4, small_request("bfs", 1.25, 77));
  BatchOptions opts;
  opts.jobs = 4;
  const BatchResult batch = run_batch(reqs, opts);
  EXPECT_TRUE(batch.all_ok());

  const InputCacheStats after = input_cache_stats();
  // One graph + one wave list generated; the other three runs hit.
  EXPECT_EQ(after.misses - before.misses, 2u);
  EXPECT_GE(after.hits - before.hits, 6u);
  EXPECT_GE(after.entries, 2u);
}

TEST(InputCache, BuilderRunsOncePerKeyAndFailureIsRetryable) {
  input_cache_clear();
  std::atomic<int> builds{0};
  auto build = [&] {
    builds.fetch_add(1);
    CsrGraph g;
    g.num_nodes = 1;
    g.offsets = {0, 1};
    g.targets = {0};
    return g;
  };
  const auto a = cached_graph("test/unit", build);
  const auto b = cached_graph("test/unit", build);
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(a.get(), b.get());  // literally the same object

  EXPECT_THROW(
      (void)cached_graph("test/throws",
                         []() -> CsrGraph { throw std::runtime_error("boom"); }),
      std::runtime_error);
  // A failed build must not poison the key.
  const auto c = cached_graph("test/throws", build);
  EXPECT_EQ(c->num_nodes, 1u);
  input_cache_clear();
}

}  // namespace
}  // namespace uvmsim
