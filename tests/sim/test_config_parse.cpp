#include "sim/config_parse.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace uvmsim {
namespace {

TEST(ConfigParse, SetsEnumsByName) {
  SimConfig cfg;
  apply_config_setting(cfg, "policy", "adaptive");
  apply_config_setting(cfg, "mem.eviction", "lfu");
  apply_config_setting(cfg, "mem.prefetcher", "none");
  EXPECT_EQ(cfg.policy.policy, PolicyKind::kAdaptive);
  EXPECT_EQ(cfg.mem.eviction, EvictionKind::kLfu);
  EXPECT_EQ(cfg.mem.prefetcher, PrefetcherKind::kNone);
}

TEST(ConfigParse, SetsNumbersAndBooleans) {
  SimConfig cfg;
  apply_config_setting(cfg, "policy.static_threshold", "32");
  apply_config_setting(cfg, "xfer.pcie_bandwidth_gbps", "31.5");
  apply_config_setting(cfg, "gpu.l2.enabled", "true");
  apply_config_setting(cfg, "mitigation.enabled", "on");
  EXPECT_EQ(cfg.policy.static_threshold, 32u);
  EXPECT_DOUBLE_EQ(cfg.xfer.pcie_bandwidth_gbps, 31.5);
  EXPECT_TRUE(cfg.gpu.l2.enabled);
  EXPECT_TRUE(cfg.mitigation.enabled);
}

TEST(ConfigParse, SizeSuffixes) {
  SimConfig cfg;
  apply_config_setting(cfg, "mem.device_capacity_bytes", "48MB");
  EXPECT_EQ(cfg.mem.device_capacity_bytes, 48ull << 20);
  apply_config_setting(cfg, "mem.device_capacity_bytes", "1 GB");
  EXPECT_EQ(cfg.mem.device_capacity_bytes, 1ull << 30);
  apply_config_setting(cfg, "gpu.l2.size_bytes", "512kb");
  EXPECT_EQ(cfg.gpu.l2.size_bytes, 512ull << 10);
}

TEST(ConfigParse, KeyValueAssignmentForm) {
  SimConfig cfg;
  apply_config_setting(cfg, " policy.migration_penalty = 1048576 ");
  EXPECT_EQ(cfg.policy.migration_penalty, 1048576u);
}

TEST(ConfigParse, CaseInsensitiveKeysAndValues) {
  SimConfig cfg;
  apply_config_setting(cfg, "Policy", "ADAPTIVE");
  EXPECT_EQ(cfg.policy.policy, PolicyKind::kAdaptive);
}

TEST(ConfigParse, UnknownKeyThrows) {
  SimConfig cfg;
  EXPECT_THROW(apply_config_setting(cfg, "mem.nonsense", "1"), std::invalid_argument);
}

TEST(ConfigParse, BadValuesThrow) {
  SimConfig cfg;
  EXPECT_THROW(apply_config_setting(cfg, "policy", "bogus"), std::invalid_argument);
  EXPECT_THROW(apply_config_setting(cfg, "gpu.num_sms", "many"), std::invalid_argument);
  EXPECT_THROW(apply_config_setting(cfg, "gpu.l2.enabled", "perhaps"),
               std::invalid_argument);
  EXPECT_THROW(apply_config_setting(cfg, "no-equals-sign"), std::invalid_argument);
}

TEST(ConfigParse, FileWithCommentsAndBlanks) {
  SimConfig cfg;
  std::istringstream file(R"(
# experiment: PCIe 4.0 what-if
xfer.pcie_bandwidth_gbps = 31.5
policy = adaptive          # the paper's scheme
mem.eviction = lfu

policy.migration_penalty = 4
)");
  EXPECT_EQ(load_config_stream(cfg, file), 4u);
  EXPECT_DOUBLE_EQ(cfg.xfer.pcie_bandwidth_gbps, 31.5);
  EXPECT_EQ(cfg.policy.policy, PolicyKind::kAdaptive);
  EXPECT_EQ(cfg.policy.migration_penalty, 4u);
}

TEST(ConfigParse, KeyListingIsNonTrivialAndSorted) {
  const auto& keys = config_keys();
  EXPECT_GT(keys.size(), 25u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_NE(std::find(keys.begin(), keys.end(), "policy.migration_penalty"), keys.end());
}

TEST(ConfigRoundTrip, SerializeThenLoadReproducesEveryField) {
  SimConfig original;
  original.policy.policy = PolicyKind::kAdaptive;
  original.policy.static_threshold = 16;
  original.policy.migration_penalty = 1048576;
  original.mem.eviction = EvictionKind::kTree;
  original.mem.prefetcher = PrefetcherKind::kSequential;
  original.mem.oversubscription = 1.25;
  original.gpu.l2.enabled = true;
  original.mitigation.enabled = true;
  original.xfer.pcie_bandwidth_gbps = 31.5;
  original.kernel_launch_overhead_us = 7.5;
  original.copy_then_execute = true;
  original.rng_seed = 12345;

  std::istringstream in(to_config_string(original));
  SimConfig restored;
  load_config_stream(restored, in);

  EXPECT_EQ(restored.policy.policy, original.policy.policy);
  EXPECT_EQ(restored.policy.static_threshold, original.policy.static_threshold);
  EXPECT_EQ(restored.policy.migration_penalty, original.policy.migration_penalty);
  EXPECT_EQ(restored.mem.eviction, original.mem.eviction);
  EXPECT_EQ(restored.mem.prefetcher, original.mem.prefetcher);
  EXPECT_DOUBLE_EQ(restored.mem.oversubscription, original.mem.oversubscription);
  EXPECT_EQ(restored.gpu.l2.enabled, original.gpu.l2.enabled);
  EXPECT_EQ(restored.mitigation.enabled, original.mitigation.enabled);
  EXPECT_DOUBLE_EQ(restored.xfer.pcie_bandwidth_gbps, original.xfer.pcie_bandwidth_gbps);
  EXPECT_DOUBLE_EQ(restored.kernel_launch_overhead_us, original.kernel_launch_overhead_us);
  EXPECT_EQ(restored.copy_then_execute, original.copy_then_execute);
  EXPECT_EQ(restored.rng_seed, original.rng_seed);
}

TEST(ConfigRoundTrip, DefaultsRoundTripToo) {
  SimConfig original;
  std::istringstream in(to_config_string(original));
  SimConfig restored;
  const std::size_t applied = load_config_stream(restored, in);
  EXPECT_GE(applied, 30u);
  EXPECT_EQ(to_config_string(restored), to_config_string(original));
}

TEST(ConfigParse, ParsedConfigValidates) {
  SimConfig cfg;
  std::istringstream file("mem.device_capacity_bytes = 32MB\npolicy.static_threshold = 16\n");
  load_config_stream(cfg, file);
  EXPECT_NO_THROW(cfg.validate());
}

}  // namespace
}  // namespace uvmsim
