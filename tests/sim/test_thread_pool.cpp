#include "sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace uvmsim {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);

  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait_idle(): destruction must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ExceptionDoesNotKillWorkerOrNeighbours) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([] { throw std::runtime_error("task failure"); });
  for (int i = 0; i < 20; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Every non-throwing task still ran.
  EXPECT_EQ(counter.load(), 20);

  // The pool remains usable and a clean interval reports no error.
  pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 21);
}

TEST(ThreadPool, OnlyFirstExceptionIsReported) {
  ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "expected wait_idle to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPool, TasksRunConcurrentlyAcrossWorkers) {
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      if (inside.fetch_add(1) + 1 >= 2) overlapped.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      inside.fetch_sub(1);
    });
  }
  pool.wait_idle();
  EXPECT_TRUE(overlapped.load());
}

}  // namespace
}  // namespace uvmsim
