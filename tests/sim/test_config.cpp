#include "sim/config.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(Config, DefaultsAreValid) {
  SimConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, DefaultsMatchTableOne) {
  const SimConfig cfg;
  EXPECT_EQ(cfg.gpu.num_sms, 28u);
  EXPECT_DOUBLE_EQ(cfg.gpu.core_clock_ghz, 1.481);
  EXPECT_EQ(cfg.gpu.dram_latency, 100u);
  EXPECT_EQ(cfg.gpu.page_walk_latency, 100u);
  EXPECT_EQ(cfg.xfer.remote_access_latency, 200u);
  EXPECT_DOUBLE_EQ(cfg.xfer.far_fault_latency_us, 45.0);
  EXPECT_EQ(cfg.mem.eviction, EvictionKind::kLru);
  EXPECT_EQ(cfg.mem.prefetcher, PrefetcherKind::kTree);
  EXPECT_EQ(cfg.mem.eviction_granularity, kLargePageSize);
  EXPECT_EQ(cfg.mem.counter_granularity, kBasicBlockSize);
  EXPECT_EQ(cfg.policy.static_threshold, 8u);
  EXPECT_EQ(cfg.policy.migration_penalty, 8u);
  EXPECT_EQ(cfg.policy.policy, PolicyKind::kFirstTouch);
}

TEST(Config, FarFaultCyclesMatchesClock) {
  SimConfig cfg;
  // 45 us at 1.481 GHz = 66645 cycles.
  EXPECT_EQ(cfg.far_fault_cycles(), 66645u);
}

TEST(Config, PcieBytesPerCycle) {
  const SimConfig cfg;
  EXPECT_NEAR(cfg.pcie_bytes_per_cycle(), 15.75 / 1.481, 1e-9);
}

TEST(Config, DramBytesPerCycle) {
  const SimConfig cfg;
  EXPECT_NEAR(cfg.dram_bytes_per_cycle(), 484.0 / 1.481, 1e-9);
}

TEST(Config, TotalWarps) {
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 16;
  EXPECT_EQ(cfg.total_warps(), 64u);
}

TEST(ConfigValidation, RejectsZeroSms) {
  SimConfig cfg;
  cfg.gpu.num_sms = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigValidation, RejectsTinyCapacity) {
  SimConfig cfg;
  cfg.mem.device_capacity_bytes = kBasicBlockSize;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigValidation, RejectsUnalignedCapacity) {
  SimConfig cfg;
  cfg.mem.device_capacity_bytes = kLargePageSize + 123;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigValidation, RejectsBadEvictionGranularity) {
  SimConfig cfg;
  cfg.mem.eviction_granularity = kPageSize;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigValidation, AcceptsBlockEvictionGranularity) {
  SimConfig cfg;
  cfg.mem.eviction_granularity = kBasicBlockSize;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidation, AcceptsPageCounterGranularity) {
  SimConfig cfg;
  cfg.mem.counter_granularity = kPageSize;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidation, RejectsZeroThreshold) {
  SimConfig cfg;
  cfg.policy.static_threshold = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigValidation, RejectsZeroPenalty) {
  SimConfig cfg;
  cfg.policy.migration_penalty = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, DescribeMentionsKeyParameters) {
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kAdaptive;
  const std::string s = describe(cfg);
  EXPECT_NE(s.find("PCIe"), std::string::npos);
  EXPECT_NE(s.find("dynamic threshold"), std::string::npos);
  EXPECT_NE(s.find("ts = 8"), std::string::npos);
  EXPECT_NE(s.find("p = 8"), std::string::npos);
}

TEST(Config, EnumToString) {
  EXPECT_EQ(to_string(EvictionKind::kLru), "LRU");
  EXPECT_EQ(to_string(EvictionKind::kLfu), "LFU");
  EXPECT_EQ(to_string(PrefetcherKind::kTree), "tree");
  EXPECT_EQ(to_string(PrefetcherKind::kNone), "none");
}

TEST(Geometry, Constants) {
  EXPECT_EQ(kPageSize, 4096u);
  EXPECT_EQ(kBasicBlockSize, 65536u);
  EXPECT_EQ(kLargePageSize, 2u * 1024 * 1024);
  EXPECT_EQ(kPagesPerBlock, 16u);
  EXPECT_EQ(kBlocksPerLargePage, 32u);
  EXPECT_EQ(kPagesPerLargePage, 512u);
}

TEST(Geometry, AddressHelpers) {
  const VirtAddr a = 5 * kLargePageSize + 3 * kBasicBlockSize + 2 * kPageSize + 17;
  EXPECT_EQ(chunk_of(a), 5u);
  EXPECT_EQ(block_of(a), 5u * 32 + 3);
  EXPECT_EQ(page_of(a), (5u * 32 + 3) * 16 + 2);
  EXPECT_EQ(chunk_of_block(block_of(a)), 5u);
  EXPECT_EQ(block_of_page(page_of(a)), block_of(a));
  EXPECT_EQ(first_block_of_chunk(5), 5u * 32);
  EXPECT_EQ(first_page_of_block(7), 7u * 16);
  EXPECT_EQ(addr_of_block(block_of(a)), a / kBasicBlockSize * kBasicBlockSize);
}

TEST(Geometry, RoundingHelpers) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(div_ceil(9, 4), 3u);
  EXPECT_EQ(div_ceil(8, 4), 2u);
}

}  // namespace
}  // namespace uvmsim
