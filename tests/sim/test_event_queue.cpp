#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace uvmsim {
namespace {

TEST(EventQueue, StartsEmptyAtCycleZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0u);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameCycleEventsRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule_at(5, [&, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelativeToNow) {
  EventQueue q;
  Cycle seen = 0;
  q.schedule_at(100, [&] {
    q.schedule_in(50, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) q.schedule_in(1, chain);
  };
  q.schedule_at(0, chain);
  q.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(q.now(), 9u);
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(5, [] {}), std::logic_error);
}

TEST(EventQueue, RunBoundedStopsAtLimit) {
  EventQueue q;
  int count = 0;
  std::function<void()> forever = [&] {
    ++count;
    q.schedule_in(1, forever);
  };
  q.schedule_at(0, forever);
  EXPECT_EQ(q.run_bounded(100), 100u);
  EXPECT_EQ(count, 100);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, ExecutedCountsAllEvents) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_at(static_cast<Cycle>(i), [] {});
  q.run();
  EXPECT_EQ(q.executed(), 5u);
}

TEST(EventQueue, ClockDoesNotAdvancePastLastEvent) {
  EventQueue q;
  q.schedule_at(42, [] {});
  q.run();
  EXPECT_EQ(q.now(), 42u);
  q.schedule_at(42, [] {});  // same-cycle scheduling after run is legal
  q.run();
  EXPECT_EQ(q.now(), 42u);
}

}  // namespace
}  // namespace uvmsim
