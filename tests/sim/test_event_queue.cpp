#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <random>
#include <utility>
#include <vector>

namespace uvmsim {
namespace {

TEST(EventQueue, StartsEmptyAtCycleZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0u);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameCycleEventsRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule_at(5, [&, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelativeToNow) {
  EventQueue q;
  Cycle seen = 0;
  q.schedule_at(100, [&] {
    q.schedule_in(50, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) q.schedule_in(1, chain);
  };
  q.schedule_at(0, chain);
  q.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(q.now(), 9u);
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(5, [] {}), std::logic_error);
}

TEST(EventQueue, PastSchedulingErrorCarriesCycleContext) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.run();
  try {
    q.schedule_at(40, [] {});
    FAIL() << "scheduling into the past must throw";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("when=40"), std::string::npos) << msg;
    EXPECT_NE(msg.find("now=100"), std::string::npos) << msg;
  }
}

TEST(EventAction, LargeCapturesFallBackToHeapCorrectly) {
  // A capture well past the inline buffer still runs and destructs exactly
  // once (exercises the heap-fallback vtable).
  EventQueue q;
  std::array<std::uint64_t, 32> payload{};  // 256 B > EventAction::kInlineSize
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i * 3 + 1;
  std::uint64_t sum = 0;
  q.schedule_at(1, [payload, &sum] {
    for (const std::uint64_t v : payload) sum += v;
  });
  q.run();
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) expected += i * 3 + 1;
  EXPECT_EQ(sum, expected);
}

TEST(EventAction, SupportsMoveOnlyCaptures) {
  // EventAction is move-only, so (unlike std::function) actions may own
  // move-only state.
  EventQueue q;
  auto owned = std::make_unique<int>(41);
  int seen = 0;
  q.schedule_at(7, [p = std::move(owned), &seen] { seen = *p + 1; });
  q.run();
  EXPECT_EQ(seen, 42);
}

TEST(EventAction, DestroysCapturesExactlyOnce) {
  struct Probe {
    std::shared_ptr<int> alive;
  };
  auto alive = std::make_shared<int>(1);
  {
    EventQueue q;
    q.schedule_at(1, [probe = Probe{alive}] { (void)probe; });
    EXPECT_EQ(alive.use_count(), 2);
    q.run();
    EXPECT_EQ(alive.use_count(), 1);  // fired actions release their captures
    q.schedule_at(1, [probe = Probe{alive}] { (void)probe; });
    EXPECT_EQ(alive.use_count(), 2);
  }
  // Unfired actions release on queue destruction.
  EXPECT_EQ(alive.use_count(), 1);
}

TEST(EventQueue, HeavyChurnPreservesDeterministicOrder) {
  // Interleave fire/schedule so slots are recycled, and verify the global
  // (cycle, sequence) order survives the slot reuse and pool growth.
  EventQueue q;
  std::vector<std::pair<Cycle, int>> fired;
  int scheduled = 0;
  std::function<void(int)> spawn = [&](int depth) {
    const int id = scheduled++;
    q.schedule_in(static_cast<Cycle>((id * 7) % 13), [&, id, depth] {
      fired.emplace_back(q.now(), id);
      if (depth > 0) {
        spawn(depth - 1);
        spawn(depth - 1);
      }
    });
  };
  spawn(7);
  q.run();
  ASSERT_EQ(fired.size(), 255u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_GE(fired[i].first, fired[i - 1].first) << "clock ran backwards at " << i;
  }
  // Same-cycle events must fire in schedule order (ids are schedule-ordered
  // only within one cycle when spawned at the same depth; re-run and compare
  // against a second identical queue for full determinism instead).
  EventQueue q2;
  std::vector<std::pair<Cycle, int>> fired2;
  scheduled = 0;
  std::function<void(int)> spawn2 = [&](int depth) {
    const int id = scheduled++;
    q2.schedule_in(static_cast<Cycle>((id * 7) % 13), [&, id, depth] {
      fired2.emplace_back(q2.now(), id);
      if (depth > 0) {
        spawn2(depth - 1);
        spawn2(depth - 1);
      }
    });
  };
  spawn2(7);
  q2.run();
  EXPECT_EQ(fired, fired2);
}

TEST(EventQueue, RunBoundedStopsAtLimit) {
  EventQueue q;
  int count = 0;
  std::function<void()> forever = [&] {
    ++count;
    q.schedule_in(1, forever);
  };
  q.schedule_at(0, forever);
  EXPECT_EQ(q.run_bounded(100), 100u);
  EXPECT_EQ(count, 100);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, ExecutedCountsAllEvents) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_at(static_cast<Cycle>(i), [] {});
  q.run();
  EXPECT_EQ(q.executed(), 5u);
}

// Randomized wheel ≡ heap equivalence. The queue routes events with
// `when - now < kWheelSpan` through the timing wheel and everything farther
// through the fallback heap; this property test drives both paths (plus the
// warp-stepper ring) against a single reference model — a plain min-heap of
// (when, seq) with seq mirroring the schedule-call order — and requires the
// fired sequence to match the model's pop order exactly. Delays interleave
// near (in-wheel), boundary (kWheelSpan +/- 1), far (heap, later walking
// into the wheel's window as the clock advances) and past-clamped targets,
// scheduled both up front and dynamically from inside firing events.
struct WheelPropertyHarness {
  using Key = std::pair<Cycle, std::uint64_t>;  // (when, schedule order)

  EventQueue q;
  std::mt19937_64 rng{0xC0FFEE};
  std::uint64_t next_seq = 0;
  std::uint64_t budget = 0;
  std::uint32_t stepper = 0;
  std::vector<Key> fired;
  std::priority_queue<Key, std::vector<Key>, std::greater<>> model;

  static void step_thunk(void* self, WarpId w) {
    static_cast<WheelPropertyHarness*>(self)->on_fire(w);
  }

  void on_fire(std::uint64_t seq) {
    fired.emplace_back(q.now(), seq);
    const std::uint64_t spawn = rng() % 3;  // 0..2 replacements per firing
    for (std::uint64_t i = 0; i < spawn && budget > 0; ++i) schedule_random();
  }

  void schedule_random() {
    --budget;
    Cycle when;
    switch (rng() % 8) {
      case 0: {  // "past": a target before now, clamped to now by the caller
        // (the GPU model's finish_access pattern: `next < now ? now : next`)
        const Cycle target = q.now() - std::min<Cycle>(q.now(), rng() % 50);
        when = target < q.now() ? q.now() : target;
        break;
      }
      case 1:  // wheel/heap boundary
        when = q.now() + EventQueue::kWheelSpan - 1 + rng() % 3;
        break;
      case 2:
      case 3:  // far: heap entries that later enter the wheel's window
        when = q.now() + rng() % (3 * EventQueue::kWheelSpan);
        break;
      default:  // near: dense in-wheel traffic
        when = q.now() + rng() % 100;
        break;
    }
    const std::uint64_t seq = next_seq++;
    model.emplace(when, seq);
    if (rng() % 2 == 0) {
      q.schedule_warp_at(when, stepper, static_cast<WarpId>(seq));
    } else {
      q.schedule_at(when, [this, seq] { on_fire(seq); });
    }
  }
};

TEST(EventQueueProperty, TimingWheelMatchesHeapPopOrder) {
  WheelPropertyHarness h;
  h.stepper = h.q.register_warp_stepper(&WheelPropertyHarness::step_thunk, &h);
  h.budget = 20000;
  for (int i = 0; i < 64 && h.budget > 0; ++i) h.schedule_random();
  h.q.run();

  ASSERT_EQ(h.fired.size(), h.next_seq);
  for (std::size_t i = 0; i < h.fired.size(); ++i) {
    ASSERT_FALSE(h.model.empty());
    EXPECT_EQ(h.fired[i], h.model.top()) << "divergence at pop " << i;
    if (i > 0) {
      EXPECT_GE(h.fired[i].first, h.fired[i - 1].first)
          << "clock ran backwards at pop " << i;
    }
    h.model.pop();
  }
  EXPECT_TRUE(h.model.empty());
  EXPECT_EQ(h.q.executed(), h.next_seq);
}

TEST(EventQueue, ClockDoesNotAdvancePastLastEvent) {
  EventQueue q;
  q.schedule_at(42, [] {});
  q.run();
  EXPECT_EQ(q.now(), 42u);
  q.schedule_at(42, [] {});  // same-cycle scheduling after run is legal
  q.run();
  EXPECT_EQ(q.now(), 42u);
}

}  // namespace
}  // namespace uvmsim
