// Strict CLI numeric parsing (tools/flag_parse.hpp): the whole token must be
// a finite in-range number — the atof/atoi behaviors these parsers replace
// mapped garbage to 0 and ran the wrong experiment silently.
#include "../../tools/flag_parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace uvmsim::tools {
namespace {

TEST(ParseDouble, AcceptsWholeTokenNumbers) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("1.25", v));
  EXPECT_DOUBLE_EQ(v, 1.25);
  EXPECT_TRUE(parse_double("-0.5", v));
  EXPECT_DOUBLE_EQ(v, -0.5);
  EXPECT_TRUE(parse_double("2e3", v));
  EXPECT_DOUBLE_EQ(v, 2000.0);
}

TEST(ParseDouble, RejectsPartialAndNonFinite) {
  double v = 42.0;
  EXPECT_FALSE(parse_double("0..5", v));
  EXPECT_FALSE(parse_double("1.5x", v));
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double(nullptr, v));
  EXPECT_FALSE(parse_double("inf", v));
  EXPECT_FALSE(parse_double("nan", v));
  EXPECT_FALSE(parse_double("1e999", v));
  EXPECT_DOUBLE_EQ(v, 42.0);  // rejected parses leave the output untouched
}

TEST(ParseU64, AcceptsDecimalAndRejectsJunk) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(parse_u64("-1", v));  // strtoull would wrap this to 2^64-1
  EXPECT_FALSE(parse_u64("8x", v));
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // overflow
}

TEST(ParseU32, EnforcesRange) {
  std::uint32_t v = 0;
  EXPECT_TRUE(parse_u32("4294967295", v));
  EXPECT_EQ(v, UINT32_MAX);
  EXPECT_FALSE(parse_u32("4294967296", v));
  EXPECT_FALSE(parse_u32("-2", v));
}

TEST(ParseUnsigned, EnforcesRange) {
  unsigned v = 0;
  EXPECT_TRUE(parse_unsigned("64", v));
  EXPECT_EQ(v, 64u);
  EXPECT_FALSE(parse_unsigned("99999999999999999999", v));
}

}  // namespace
}  // namespace uvmsim::tools
