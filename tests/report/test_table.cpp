#include "report/table.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), std::logic_error);
}

TEST(Table, ValidateCatchesArityMismatch) {
  Table t({"a", "b"});
  t.row().cell("only-one");
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(Table, TextRenderingAligns) {
  Table t({"name", "value"});
  t.row().cell("x").cell(std::uint64_t{7});
  t.row().cell("longer").cell(std::uint64_t{42});
  const std::string s = t.to_text();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  // Three lines: header + two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.row().cell("x").cell(1.5, 1);
  EXPECT_EQ(t.to_csv(), "a,b\nx,1.5\n");
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"a"});
  t.row().cell("has,comma");
  t.row().cell("has\"quote");
  const std::string s = t.to_csv();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, MarkdownRendering) {
  Table t({"a", "b"});
  t.row().cell("x").cell("y");
  EXPECT_EQ(t.to_markdown(), "| a | b |\n|---|---|\n| x | y |\n");
}

TEST(Table, NumericFormatting) {
  Table t({"v"});
  t.row().cell(3.14159, 2);
  EXPECT_EQ(t.to_csv(), "v\n3.14\n");
}

TEST(Table, CountsRowsAndCols) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.row().cell("1").cell("2").cell("3");
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace uvmsim
