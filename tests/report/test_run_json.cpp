#include "report/run_json.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace uvmsim {
namespace {

TEST(RunJson, ContainsAxesAndStats) {
  std::ostringstream os;
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kAdaptive;
  RunResult r;
  r.stats.kernel_cycles = 777;
  r.stats.pages_thrashed = 4242;
  write_run_json(os, "sssp", cfg, 1.25, r);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"workload\": \"sssp\""), std::string::npos);
  EXPECT_NE(j.find("\"policy\": \"adaptive\""), std::string::npos);
  EXPECT_NE(j.find("\"oversub\": 1.25"), std::string::npos);
  EXPECT_NE(j.find("\"kernel_cycles\": 777"), std::string::npos);
  EXPECT_NE(j.find("\"pages_thrashed\": 4242"), std::string::npos);
}

TEST(RunJson, IsBalancedAndTerminated) {
  std::ostringstream os;
  write_run_json(os, "x", SimConfig{}, 0.0, RunResult{});
  const std::string j = os.str();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j[j.size() - 2], '}');
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'), 1);
  EXPECT_EQ(std::count(j.begin(), j.end(), '}'), 1);
  // No trailing comma before the closing brace.
  EXPECT_EQ(j.find(",\n}"), std::string::npos);
}

TEST(RunJson, QuotesStringsOnly) {
  std::ostringstream os;
  write_run_json(os, "ra", SimConfig{}, 1.5, RunResult{});
  const std::string j = os.str();
  // Numeric fields are unquoted.
  EXPECT_NE(j.find("\"far_faults\": 0"), std::string::npos);
  EXPECT_EQ(j.find("\"far_faults\": \"0\""), std::string::npos);
}

}  // namespace
}  // namespace uvmsim
