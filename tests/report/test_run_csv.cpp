#include "report/run_csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace uvmsim {
namespace {

TEST(RunCsv, HeaderAndRowArityMatch) {
  std::ostringstream os;
  write_run_csv_header(os);

  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kAdaptive;
  RunResult r;
  r.footprint_bytes = 100;
  r.capacity_bytes = 80;
  r.stats.kernel_cycles = 1234;
  append_run_csv(os, "sssp", cfg, 1.25, r);

  const std::string text = os.str();
  const auto first_nl = text.find('\n');
  const std::string header = text.substr(0, first_nl);
  const std::string row = text.substr(first_nl + 1, text.size() - first_nl - 2);
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));
}

TEST(RunCsv, RowContainsConfigurationAxes) {
  std::ostringstream os;
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kStaticAlways;
  cfg.policy.static_threshold = 16;
  cfg.policy.migration_penalty = 4;
  cfg.mem.eviction = EvictionKind::kLfu;
  append_run_csv(os, "bfs", cfg, 1.5, RunResult{});
  const std::string row = os.str();
  EXPECT_NE(row.find("bfs,always,LFU,tree,16,4,1.5"), std::string::npos);
}

TEST(RunCsv, StatsLandInTheRow) {
  std::ostringstream os;
  RunResult r;
  r.stats.pages_thrashed = 987654;
  append_run_csv(os, "ra", SimConfig{}, 0.0, r);
  EXPECT_NE(os.str().find("987654"), std::string::npos);
}

TEST(RunCsv, PolicySlugsAreStable) {
  for (const auto& [kind, slug] :
       std::vector<std::pair<PolicyKind, std::string>>{
           {PolicyKind::kFirstTouch, "baseline"},
           {PolicyKind::kStaticAlways, "always"},
           {PolicyKind::kStaticOversub, "oversub"},
           {PolicyKind::kAdaptive, "adaptive"}}) {
    std::ostringstream os;
    SimConfig cfg;
    cfg.policy.policy = kind;
    append_run_csv(os, "x", cfg, 0.0, RunResult{});
    EXPECT_NE(os.str().find("x," + slug + ","), std::string::npos);
  }
}

}  // namespace
}  // namespace uvmsim
