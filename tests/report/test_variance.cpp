#include "report/variance.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(SampleStats, EmptyInput) {
  const SampleStats s = summarize_samples({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(SampleStats, SingleSampleHasZeroSpread) {
  const SampleStats s = summarize_samples({42.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(SampleStats, KnownValues) {
  const SampleStats s = summarize_samples({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.cv(), 0.4276, 0.001);
}

TEST(SeedSweep, DifferentSeedsGiveDifferentButClusteredResults) {
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  WorkloadParams params;
  params.scale = 0.1;
  const auto cycles = kernel_cycles_across_seeds("ra", cfg, 1.25, params, 3);
  ASSERT_EQ(cycles.size(), 3u);
  // Different random tables: results differ but stay within 2x of another.
  const SampleStats s = summarize_samples(cycles);
  EXPECT_GT(s.min, 0.0);
  EXPECT_LT(s.max / s.min, 2.0);
  EXPECT_NE(cycles[0], cycles[1]);
}

TEST(SeedSweep, SameSeedIsDeterministic) {
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  WorkloadParams params;
  params.scale = 0.1;
  const auto a = kernel_cycles_across_seeds("bfs", cfg, 0.0, params, 1);
  const auto b = kernel_cycles_across_seeds("bfs", cfg, 0.0, params, 1);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace uvmsim
