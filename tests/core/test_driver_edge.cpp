// Driver edge cases: capacity starvation, in-flight collisions, prefetch
// dropping, writeback gating, and PCIe accounting under pressure.
#include <gtest/gtest.h>

#include <map>

#include "core/uvm_driver.hpp"

namespace uvmsim {
namespace {

class DriverEdgeTest : public ::testing::Test {
 protected:
  void build(SimConfig cfg, std::uint64_t capacity, std::uint64_t va_bytes) {
    cfg_ = cfg;
    space_ = AddressSpace{};
    space_.allocate("a", va_bytes);
    queue_ = EventQueue{};
    stats_ = SimStats{};
    driver_ = std::make_unique<UvmDriver>(cfg_, space_, capacity, queue_, stats_);
    driver_->set_warp_waker([this](WarpId w, Cycle c) { woken_[w] = c; });
  }

  SimConfig cfg_;
  AddressSpace space_;
  EventQueue queue_;
  SimStats stats_;
  std::unique_ptr<UvmDriver> driver_;
  std::map<WarpId, Cycle> woken_;
};

TEST_F(DriverEdgeTest, MinimalCapacityStillMakesProgress) {
  // One large page of device memory, working set of four: every fault must
  // be serviced by evicting the previous resident chunk.
  SimConfig cfg;
  cfg.mem.prefetcher = PrefetcherKind::kNone;
  build(cfg, kLargePageSize, 4 * kLargePageSize);
  for (BlockNum b = 0; b < 4 * kBlocksPerLargePage; ++b) {
    (void)driver_->access(0, addr_of_block(b), AccessType::kRead, 1, queue_.now());
    queue_.run();
    EXPECT_EQ(driver_->blocks().block(b).residence, Residence::kDevice);
  }
  EXPECT_TRUE(driver_->idle());
  EXPECT_GT(stats_.evictions, 0u);
}

TEST_F(DriverEdgeTest, BurstLargerThanCapacityDefersButCompletes) {
  // 64 distinct faults raised in one cycle against a 32-block device: the
  // fault engine must defer and retry as arrivals/evictions free space.
  SimConfig cfg;
  cfg.mem.prefetcher = PrefetcherKind::kNone;
  build(cfg, kLargePageSize, 4 * kLargePageSize);
  for (WarpId w = 0; w < 64; ++w) {
    const auto out =
        driver_->access(w, addr_of_block(w), AccessType::kRead, 1, 0);
    EXPECT_TRUE(out.stalled);
  }
  queue_.run();
  EXPECT_EQ(woken_.size(), 64u);
  EXPECT_TRUE(driver_->idle());
  EXPECT_LE(driver_->device().used_blocks(), driver_->device().capacity_blocks());
}

TEST_F(DriverEdgeTest, PrefetchBlocksAreDroppedUnderStarvation) {
  // Tree prefetcher wants to pull big sets, but the device only holds one
  // chunk; prefetch candidates must be dropped, not deadlock the engine.
  SimConfig cfg;
  cfg.mem.prefetcher = PrefetcherKind::kTree;
  build(cfg, kLargePageSize, 8 * kLargePageSize);
  for (BlockNum b = 0; b < 2 * kBlocksPerLargePage; ++b) {
    (void)driver_->access(0, addr_of_block(b), AccessType::kRead, 1, queue_.now());
    queue_.run();
  }
  EXPECT_TRUE(driver_->idle());
  EXPECT_LE(driver_->device().used_blocks(), driver_->device().capacity_blocks());
}

TEST_F(DriverEdgeTest, WritebackGatesTheReplacementMigration) {
  SimConfig cfg;
  cfg.mem.prefetcher = PrefetcherKind::kNone;
  cfg.mem.eviction_protect_cycles = 0;
  build(cfg, kLargePageSize, 4 * kLargePageSize);

  // Fill chunk 0 with dirty data.
  for (BlockNum b = 0; b < kBlocksPerLargePage; ++b) {
    (void)driver_->access(0, addr_of_block(b), AccessType::kWrite, 1, queue_.now());
    queue_.run();
  }
  const auto d2h_before = driver_->pcie().d2h().total_bytes();

  // Fault into chunk 1: evicts the dirty chunk -> 2 MB of writebacks.
  (void)driver_->access(0, addr_of_block(kBlocksPerLargePage), AccessType::kRead, 1,
                        queue_.now());
  queue_.run();
  EXPECT_EQ(driver_->pcie().d2h().total_bytes() - d2h_before, kLargePageSize);
  EXPECT_EQ(stats_.writeback_pages, kPagesPerLargePage);
}

TEST_F(DriverEdgeTest, CleanDataNeverTouchesTheD2hChannel) {
  SimConfig cfg;
  cfg.mem.prefetcher = PrefetcherKind::kNone;
  build(cfg, kLargePageSize, 4 * kLargePageSize);
  for (BlockNum b = 0; b < 3 * kBlocksPerLargePage; ++b) {
    (void)driver_->access(0, addr_of_block(b), AccessType::kRead, 1, queue_.now());
    queue_.run();
  }
  EXPECT_EQ(driver_->pcie().d2h().total_bytes(), 0u);
}

TEST_F(DriverEdgeTest, AccessToInFlightBlockJoinsWaitersWithoutNewFault) {
  build(SimConfig{}, 2 * kLargePageSize, 4 * kLargePageSize);
  const auto o1 = driver_->access(1, 0, AccessType::kRead, 1, 0);
  ASSERT_TRUE(o1.stalled);
  const auto faults = stats_.far_faults;
  const auto o2 = driver_->access(2, kPageSize, AccessType::kWrite, 1, 0);
  EXPECT_TRUE(o2.stalled);
  EXPECT_EQ(stats_.far_faults, faults);  // joined, not re-raised
  queue_.run();
  EXPECT_TRUE(woken_.contains(1));
  EXPECT_TRUE(woken_.contains(2));
}

TEST_F(DriverEdgeTest, EvictedBlockRefaultsAndMigratesAgain) {
  SimConfig cfg;
  cfg.mem.prefetcher = PrefetcherKind::kNone;
  cfg.mem.eviction_protect_cycles = 0;
  build(cfg, kLargePageSize, 2 * kLargePageSize);
  (void)driver_->access(0, 0, AccessType::kRead, 1, 0);
  queue_.run();
  // Evict chunk 0 by filling chunk 1.
  for (BlockNum b = kBlocksPerLargePage; b < 2 * kBlocksPerLargePage; ++b) {
    (void)driver_->access(0, addr_of_block(b), AccessType::kRead, 1, queue_.now());
    queue_.run();
  }
  ASSERT_EQ(driver_->blocks().block(0).residence, Residence::kHost);
  const auto migrated = stats_.blocks_migrated;
  (void)driver_->access(0, 0, AccessType::kRead, 1, queue_.now());
  queue_.run();
  EXPECT_EQ(driver_->blocks().block(0).residence, Residence::kDevice);
  EXPECT_GT(stats_.blocks_migrated, migrated);
  EXPECT_GE(driver_->blocks().block(0).round_trips, 1u);
}

TEST_F(DriverEdgeTest, RemoteAccessesQueueOnTheSharedChannel) {
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kStaticAlways;
  cfg.policy.static_threshold = 1000000;  // everything stays remote
  cfg.policy.write_triggers_migration = false;
  build(cfg, 2 * kLargePageSize, 4 * kLargePageSize);

  Cycle prev_done = 0;
  for (int i = 0; i < 16; ++i) {
    const auto out = driver_->access(0, 0, AccessType::kRead, 8, 0);
    ASSERT_FALSE(out.stalled);
    EXPECT_GT(out.done, prev_done);  // strictly later: channel serializes
    prev_done = out.done;
  }
  queue_.run();
  EXPECT_EQ(stats_.remote_accesses, 16u * 8u);
}

TEST_F(DriverEdgeTest, FirstTouchStatsHaveNoRemote) {
  build(SimConfig{}, 2 * kLargePageSize, 4 * kLargePageSize);
  for (BlockNum b = 0; b < 8; ++b) {
    (void)driver_->access(0, addr_of_block(b), AccessType::kRead, 1, queue_.now());
    queue_.run();
  }
  EXPECT_EQ(stats_.remote_accesses, 0u);
  EXPECT_EQ(stats_.decide_remote, 0u);
}

}  // namespace
}  // namespace uvmsim
