// Host DRAM bandwidth: shared by migrations, writebacks and zero-copy
// traffic; private per driver by default, shareable across drivers (the
// multi-GPU contention point).
#include <gtest/gtest.h>

#include "core/uvm_driver.hpp"
#include "multigpu/multi_gpu.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {
namespace {

TEST(HostMemory, TightHostBandwidthSlowsRemoteAccess) {
  AddressSpace space;
  space.allocate("a", 4 * kLargePageSize);

  auto run_remote = [&](double host_gbps) {
    SimConfig cfg;
    cfg.policy.policy = PolicyKind::kStaticAlways;
    cfg.policy.static_threshold = 1000000;  // everything remote
    cfg.policy.write_triggers_migration = false;
    cfg.xfer.host_memory_bandwidth_gbps = host_gbps;
    EventQueue queue;
    SimStats stats;
    UvmDriver driver(cfg, space, 8 * kLargePageSize, queue, stats);
    driver.set_warp_waker([](WarpId, Cycle) {});
    Cycle last = 0;
    for (int i = 0; i < 64; ++i) {
      last = driver.access(0, 0, AccessType::kRead, 16, 0).done;
    }
    queue.run();
    return last;
  };

  // With host bandwidth far below PCIe, the host side binds.
  const Cycle fast_host = run_remote(60.0);
  const Cycle slow_host = run_remote(1.0);
  EXPECT_GT(slow_host, 2 * fast_host);
}

TEST(HostMemory, SharedRegulatorSerializesAcrossDrivers) {
  AddressSpace space;
  space.allocate("a", 4 * kLargePageSize);
  SimConfig cfg;

  EventQueue queue;
  SimStats s1, s2;
  BandwidthRegulator host(cfg.xfer.host_memory_bandwidth_gbps / cfg.gpu.core_clock_ghz);
  UvmDriver d1(cfg, space, 8 * kLargePageSize, queue, s1, &host);
  UvmDriver d2(cfg, space, 8 * kLargePageSize, queue, s2, &host);
  d1.set_warp_waker([](WarpId, Cycle) {});
  d2.set_warp_waker([](WarpId, Cycle) {});

  (void)d1.access(0, 0, AccessType::kRead, 1, 0);
  (void)d2.access(0, 0, AccessType::kRead, 1, 0);
  queue.run();
  // Both drivers migrated through the same host regulator.
  EXPECT_GT(host.total_bytes(), 0u);
  EXPECT_GE(host.total_bytes(), 2 * kBasicBlockSize);
}

TEST(HostMemory, MultiGpuContentionShowsWithManyGpus) {
  // With host bandwidth barely above one PCIe link, four GPUs migrating
  // concurrently are host-bound: per-GPU effective bandwidth collapses.
  WorkloadParams params;
  params.scale = 0.2;

  auto makespan = [&](double host_gbps) {
    SimConfig cfg;
    cfg.gpu.num_sms = 8;
    cfg.gpu.warps_per_sm = 2;
    cfg.xfer.host_memory_bandwidth_gbps = host_gbps;
    auto wl = make_workload("fdtd", params);
    MultiGpuSimulator sim(cfg, MultiGpuConfig{4, /*split_capacity=*/false});
    return sim.run(*wl).makespan;
  };

  const Cycle ample = makespan(240.0);
  const Cycle scarce = makespan(16.0);
  EXPECT_GT(scarce, ample);
}

}  // namespace
}  // namespace uvmsim
