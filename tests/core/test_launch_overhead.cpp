#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "sim/config_parse.hpp"

namespace uvmsim {
namespace {

TEST(LaunchOverhead, ConversionToCycles) {
  SimConfig cfg;
  EXPECT_EQ(cfg.launch_overhead_cycles(), 0u);
  cfg.kernel_launch_overhead_us = 5.0;
  EXPECT_EQ(cfg.launch_overhead_cycles(), 7405u);  // 5 us at 1.481 GHz
}

TEST(LaunchOverhead, GapsAppearBetweenLaunchesNotInsideKernels) {
  WorkloadParams params;
  params.scale = 0.05;
  SimConfig no_gap;
  no_gap.gpu.num_sms = 4;
  no_gap.gpu.warps_per_sm = 2;
  SimConfig with_gap = no_gap;
  with_gap.kernel_launch_overhead_us = 10.0;

  const RunResult a = run_workload("fdtd", no_gap, 0.0, params);
  const RunResult b = run_workload("fdtd", with_gap, 0.0, params);

  // Kernel time (the paper's metric) is unchanged; wall-clock grows by
  // one overhead per inter-launch gap.
  EXPECT_EQ(b.stats.kernel_cycles, a.stats.kernel_cycles);
  const Cycle gaps =
      (static_cast<Cycle>(b.kernels.size()) - 1) * with_gap.launch_overhead_cycles();
  EXPECT_EQ(b.stats.total_cycles, a.stats.total_cycles + gaps);

  // Launch start times reflect the gap.
  EXPECT_EQ(b.kernels[1].start, b.kernels[0].end + with_gap.launch_overhead_cycles());
}

TEST(LaunchOverhead, ManyLaunchWorkloadsPayProportionally) {
  WorkloadParams params;
  params.scale = 0.05;
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  cfg.kernel_launch_overhead_us = 10.0;

  // nw launches one kernel per anti-diagonal — hundreds of launches.
  const RunResult nw = run_workload("nw", cfg, 0.0, params);
  const Cycle expected_overhead =
      (static_cast<Cycle>(nw.kernels.size()) - 1) * cfg.launch_overhead_cycles();
  EXPECT_GT(nw.kernels.size(), 50u);
  EXPECT_GE(nw.stats.total_cycles, expected_overhead);
}

TEST(LaunchOverhead, ParsableFromConfigText) {
  SimConfig cfg;
  apply_config_setting(cfg, "kernel_launch_overhead_us", "7.5");
  EXPECT_DOUBLE_EQ(cfg.kernel_launch_overhead_us, 7.5);
}

}  // namespace
}  // namespace uvmsim
