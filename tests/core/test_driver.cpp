#include "core/uvm_driver.hpp"

#include <gtest/gtest.h>

#include <map>

namespace uvmsim {
namespace {

/// Driver test fixture with a tiny device (2 large pages) and manual clock.
class DriverTest : public ::testing::Test {
 protected:
  DriverTest() { rebuild(SimConfig{}); }

  void rebuild(SimConfig cfg, std::uint64_t capacity = 2 * kLargePageSize,
               std::uint64_t va_bytes = 8 * kLargePageSize) {
    cfg_ = cfg;
    space_ = AddressSpace{};
    space_.allocate("a", va_bytes);
    queue_ = EventQueue{};
    stats_ = SimStats{};
    driver_ = std::make_unique<UvmDriver>(cfg_, space_, capacity, queue_, stats_);
    woken_.clear();
    driver_->set_warp_waker([this](WarpId w, Cycle c) { woken_[w] = c; });
  }

  /// Issue an access and drain the event queue.
  AccessOutcome access(VirtAddr addr, AccessType t = AccessType::kRead,
                       std::uint32_t count = 1, WarpId w = 0) {
    const auto out = driver_->access(w, addr, t, count, queue_.now());
    queue_.run();
    return out;
  }

  SimConfig cfg_;
  AddressSpace space_;
  EventQueue queue_;
  SimStats stats_;
  std::unique_ptr<UvmDriver> driver_;
  std::map<WarpId, Cycle> woken_;
};

TEST_F(DriverTest, FirstTouchMigratesAndWakes) {
  const auto out = access(0);
  EXPECT_TRUE(out.stalled);
  EXPECT_EQ(stats_.far_faults, 1u);
  EXPECT_EQ(driver_->blocks().block(0).residence, Residence::kDevice);
  ASSERT_TRUE(woken_.contains(0));
  // Wake time covers fault handling plus the PCIe transfer.
  EXPECT_GT(woken_[0], cfg_.far_fault_cycles());
  EXPECT_TRUE(driver_->idle());
}

TEST_F(DriverTest, ResidentAccessCompletesLocally) {
  access(0);
  const auto out = access(0);
  EXPECT_FALSE(out.stalled);
  EXPECT_GE(stats_.local_accesses, 1u);
  EXPECT_GE(out.done, cfg_.gpu.dram_latency);
}

TEST_F(DriverTest, TreePrefetchPullsNeighbours) {
  // Touch blocks until the chunk occupancy crosses 50 %: prefetches appear.
  for (BlockNum b = 0; b <= 16; ++b) access(addr_of_block(b));
  EXPECT_GT(stats_.blocks_prefetched, 0u);
  // Chunk 0 fully resident after the cascade.
  EXPECT_TRUE(driver_->blocks().chunk_fully_resident(0));
}

TEST_F(DriverTest, HistoricCountersTrackAllAccesses) {
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kAdaptive;  // historic counter semantics
  rebuild(cfg, /*capacity=*/16 * kLargePageSize);
  access(0, AccessType::kRead, 3);  // migrates (first touch on empty device)
  access(0, AccessType::kRead, 2);  // local — still counted
  EXPECT_EQ(driver_->counters().count(0), 5u);
}

TEST_F(DriverTest, VoltaCountersResetOnMigrationAndSkipLocal) {
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kStaticAlways;
  rebuild(cfg);
  for (int i = 0; i < 7; ++i) access(0);  // remote accesses are counted
  EXPECT_EQ(driver_->counters().count(0), 7u);
  access(0);  // 8th crosses ts -> migrates -> counter clears
  EXPECT_EQ(driver_->counters().count(0), 0u);
  access(0, AccessType::kRead, 4);  // local accesses are not counted
  EXPECT_EQ(driver_->counters().count(0), 0u);
}

TEST_F(DriverTest, EvictionOnCapacityPressure) {
  SimConfig cfg;
  cfg.mem.prefetcher = PrefetcherKind::kNone;
  rebuild(cfg);  // 2 large pages = 64 blocks
  for (BlockNum b = 0; b < 80; ++b) access(addr_of_block(b));
  EXPECT_GT(stats_.evictions, 0u);
  EXPECT_GT(stats_.pages_evicted, 0u);
  EXPECT_TRUE(driver_->device().ever_full());
  EXPECT_LE(driver_->device().used_blocks(), driver_->device().capacity_blocks());
}

TEST_F(DriverTest, ThrashingIsCountedOnReMigration) {
  SimConfig cfg;
  cfg.mem.prefetcher = PrefetcherKind::kNone;
  rebuild(cfg);
  // Fill beyond capacity, then return to block 0 (evicted by then).
  for (BlockNum b = 0; b < 70; ++b) access(addr_of_block(b));
  ASSERT_EQ(driver_->blocks().block(0).residence, Residence::kHost);
  EXPECT_GT(driver_->blocks().block(0).round_trips, 0u);
  const auto thrashed_before = stats_.pages_thrashed;
  access(0);
  EXPECT_EQ(stats_.pages_thrashed, thrashed_before + kPagesPerBlock);
  EXPECT_EQ(stats_.distinct_pages_thrashed, kPagesPerBlock);
}

TEST_F(DriverTest, DirtyEvictionWritesBack) {
  SimConfig cfg;
  cfg.mem.prefetcher = PrefetcherKind::kNone;
  rebuild(cfg);
  access(0, AccessType::kWrite);  // migrate + dirty
  access(0, AccessType::kWrite);
  for (BlockNum b = 1; b < 70; ++b) access(addr_of_block(b));
  EXPECT_GT(stats_.writeback_pages, 0u);
  EXPECT_GT(stats_.bytes_d2h, 0u);
}

TEST_F(DriverTest, CleanEvictionSkipsWriteback) {
  SimConfig cfg;
  cfg.mem.prefetcher = PrefetcherKind::kNone;
  rebuild(cfg);
  for (BlockNum b = 0; b < 70; ++b) access(addr_of_block(b));  // reads only
  EXPECT_GT(stats_.evictions, 0u);
  EXPECT_EQ(stats_.writeback_pages, 0u);
}

TEST_F(DriverTest, StaticAlwaysDelaysReadMigration) {
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kStaticAlways;
  cfg.policy.static_threshold = 8;
  rebuild(cfg);
  for (int i = 0; i < 7; ++i) {
    const auto out = access(0);
    EXPECT_FALSE(out.stalled);
  }
  EXPECT_EQ(stats_.remote_accesses, 7u);
  EXPECT_EQ(driver_->blocks().block(0).residence, Residence::kHost);
  const auto out = access(0);  // 8th access crosses ts
  EXPECT_TRUE(out.stalled);
  EXPECT_EQ(driver_->blocks().block(0).residence, Residence::kDevice);
}

TEST_F(DriverTest, StaticAlwaysWriteMigratesWithoutPrefetch) {
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kStaticAlways;
  rebuild(cfg);
  // Prime a chunk so the tree would prefetch on a faulting read.
  const auto out = access(addr_of_block(3), AccessType::kWrite);
  EXPECT_TRUE(out.stalled);
  EXPECT_EQ(stats_.write_forced_migrations, 1u);
  // Write-forced migration moves exactly the touched block.
  EXPECT_EQ(stats_.blocks_migrated, 1u);
  EXPECT_EQ(stats_.blocks_prefetched, 0u);
}

TEST_F(DriverTest, RemoteAccessesShareThePcieChannel) {
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kStaticAlways;
  rebuild(cfg);
  const auto before = driver_->pcie().h2d().total_bytes();
  access(0, AccessType::kRead, 4);
  // Zero-copy wire traffic includes the per-transaction overhead.
  EXPECT_EQ(driver_->pcie().h2d().total_bytes(),
            before + 4 * (kWarpAccessBytes + cfg_.xfer.remote_overhead_bytes));
}

TEST_F(DriverTest, RemoteWriteUsesD2hChannel) {
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kStaticAlways;
  cfg.policy.write_triggers_migration = false;
  rebuild(cfg);
  access(0, AccessType::kWrite, 2);
  EXPECT_EQ(driver_->pcie().d2h().total_bytes(),
            2 * (kWarpAccessBytes + cfg_.xfer.remote_overhead_bytes));
}

TEST_F(DriverTest, AdaptiveFallsBackToFirstTouchWhenEmpty) {
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kAdaptive;
  rebuild(cfg, /*capacity=*/16 * kLargePageSize);  // footprint (8 MB) fits
  const auto out = access(0);
  EXPECT_TRUE(out.stalled);  // td = 1 on an empty device
  EXPECT_EQ(stats_.remote_accesses, 0u);
}

TEST_F(DriverTest, AdaptiveDelaysFromStartWhenOvercommitted) {
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kAdaptive;
  cfg.policy.migration_penalty = 8;
  cfg.mem.prefetcher = PrefetcherKind::kNone;
  rebuild(cfg);  // footprint 8 MB > capacity 4 MB: Equation 1 branch 2
  // td = ts*p = 64 with r = 0: the 63rd transaction stays remote, the 64th
  // crosses the dynamic threshold.
  const auto o1 = access(0, AccessType::kRead, 63);
  EXPECT_FALSE(o1.stalled);
  EXPECT_EQ(stats_.remote_accesses, 63u);
  const auto o2 = access(0, AccessType::kRead, 1);
  EXPECT_TRUE(o2.stalled);
  EXPECT_EQ(driver_->blocks().block(0).residence, Residence::kDevice);
}

TEST_F(DriverTest, AdaptiveHardensPinningWithRoundTrips) {
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kAdaptive;
  cfg.policy.migration_penalty = 8;
  cfg.mem.prefetcher = PrefetcherKind::kNone;
  rebuild(cfg);
  // Cross td = 64 on every block so the device fills and evicts.
  for (BlockNum b = 0; b < 70; ++b) access(addr_of_block(b), AccessType::kRead, 64);
  ASSERT_TRUE(driver_->device().ever_full());
  ASSERT_EQ(driver_->blocks().block(0).residence, Residence::kHost);
  ASSERT_GE(driver_->blocks().block(0).round_trips, 1u);
  // Block 0 was evicted (r >= 1): td >= 128 while its historic count is 64,
  // so accesses stay remote until the count catches up.
  const auto remote_before = stats_.remote_accesses;
  const auto out = access(0);
  EXPECT_FALSE(out.stalled);
  EXPECT_GT(stats_.remote_accesses, remote_before);
}

TEST_F(DriverTest, AdaptiveExtremePenaltyActsAsZeroCopy) {
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kAdaptive;
  cfg.policy.migration_penalty = 1048576;
  rebuild(cfg);  // overcommitted: td is astronomically high from the start
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(access(0, i % 2 == 0 ? AccessType::kRead : AccessType::kWrite, 16).stalled);
  }
  EXPECT_EQ(stats_.far_faults, 0u);
  EXPECT_EQ(stats_.blocks_migrated, 0u);
  EXPECT_EQ(driver_->blocks().block(0).residence, Residence::kHost);
}

TEST_F(DriverTest, MultipleWaitersWakeTogether) {
  const auto o1 = driver_->access(1, 0, AccessType::kRead, 1, 0);
  const auto o2 = driver_->access(2, 64, AccessType::kRead, 1, 0);
  EXPECT_TRUE(o1.stalled);
  EXPECT_TRUE(o2.stalled);
  EXPECT_EQ(stats_.far_faults, 1u);  // second access joins the first fault
  queue_.run();
  EXPECT_TRUE(woken_.contains(1));
  EXPECT_TRUE(woken_.contains(2));
  EXPECT_EQ(stats_.replayed_accesses, 2u);
}

TEST_F(DriverTest, FaultBatchingAmortizesHandling) {
  // Many distinct faults raised in the same cycle are drained in batches.
  for (WarpId w = 0; w < 32; ++w) {
    (void)driver_->access(w, addr_of_block(2 * w), AccessType::kRead, 1, 0);
  }
  queue_.run();
  EXPECT_EQ(stats_.far_faults, 32u);
  EXPECT_LE(stats_.fault_batches, 3u);  // 64-entry batches
}

TEST_F(DriverTest, CounterGranularityPageMode) {
  SimConfig cfg;
  cfg.mem.counter_granularity = kPageSize;
  cfg.policy.policy = PolicyKind::kAdaptive;  // overcommitted: accesses stay remote
  rebuild(cfg);
  access(0);
  access(kPageSize);
  EXPECT_EQ(driver_->counters().count(0), 1u);
  EXPECT_EQ(driver_->counters().count(kPageSize), 1u);
}

}  // namespace
}  // namespace uvmsim
