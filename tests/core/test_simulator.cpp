#include "core/simulator.hpp"

#include <gtest/gtest.h>

#include "workloads/common.hpp"

namespace uvmsim {
namespace {

/// Tiny deterministic workload: N sequential passes over one array.
class ScanWorkload final : public Workload {
 public:
  ScanWorkload(std::uint64_t bytes, std::uint32_t passes, AccessType type = AccessType::kRead)
      : bytes_(bytes), passes_(passes), type_(type) {}
  [[nodiscard]] std::string name() const override { return "scan"; }
  [[nodiscard]] bool irregular() const override { return false; }

  void build(AddressSpace& space) override { r_ = make_region(space, "data", bytes_); }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    MapKernel::Options opt;
    opt.count = 8;
    opt.gap = 20;
    auto k = std::make_shared<MapKernel>(
        "scan", std::vector<MapKernel::Operand>{{r_.base, r_.bytes, type_, 0, 1}},
        r_.lines(8 * kWarpAccessBytes), opt);
    return std::vector<std::shared_ptr<const Kernel>>(passes_, k);
  }

 private:
  std::uint64_t bytes_;
  std::uint32_t passes_;
  AccessType type_;
  Region r_;
};

SimConfig small_cfg() {
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 4;
  cfg.mem.device_capacity_bytes = 8 * kLargePageSize;
  return cfg;
}

TEST(Simulator, RunsToCompletionAndTimesKernels) {
  ScanWorkload wl(4 * kLargePageSize, 2);
  Simulator sim(small_cfg());
  const RunResult r = sim.run(wl);
  ASSERT_EQ(r.kernels.size(), 2u);
  EXPECT_GT(r.kernels[0].duration(), 0u);
  EXPECT_GE(r.kernels[1].start, r.kernels[0].end);
  EXPECT_EQ(r.stats.kernel_cycles, r.kernels[0].duration() + r.kernels[1].duration());
  EXPECT_EQ(r.footprint_bytes, 4 * kLargePageSize);
  EXPECT_EQ(r.capacity_bytes, 8 * kLargePageSize);
}

TEST(Simulator, SecondPassIsFasterWhenResident) {
  ScanWorkload wl(4 * kLargePageSize, 2);
  Simulator sim(small_cfg());
  const RunResult r = sim.run(wl);
  // First pass pays migration; second runs out of local memory.
  EXPECT_LT(r.kernels[1].duration(), r.kernels[0].duration());
}

TEST(Simulator, OversubscriptionFactorDerivesCapacity) {
  ScanWorkload wl(10 * kLargePageSize, 1);
  SimConfig cfg = small_cfg();
  cfg.mem.oversubscription = 1.25;
  Simulator sim(cfg);
  const RunResult r = sim.run(wl);
  EXPECT_EQ(r.capacity_bytes, 8 * kLargePageSize);  // floor(10/1.25) = 8
  EXPECT_NEAR(r.oversubscription(), 1.25, 0.01);
}

TEST(Simulator, CapacityNeverBelowOneLargePage) {
  ScanWorkload wl(kLargePageSize, 1);
  SimConfig cfg = small_cfg();
  cfg.mem.oversubscription = 8.0;
  Simulator sim(cfg);
  const RunResult r = sim.run(wl);
  EXPECT_EQ(r.capacity_bytes, kLargePageSize);
}

TEST(Simulator, OversubscribedScanThrashesUnderLru) {
  SimConfig cfg = small_cfg();
  cfg.mem.oversubscription = 1.5;
  ScanWorkload wl(12 * kLargePageSize, 3);
  Simulator sim(cfg);
  const RunResult r = sim.run(wl);
  EXPECT_GT(r.stats.evictions, 0u);
  EXPECT_GT(r.stats.pages_thrashed, 0u);
}

TEST(Simulator, WritePassesProduceWritebacks) {
  SimConfig cfg = small_cfg();
  cfg.mem.oversubscription = 1.5;
  ScanWorkload wl(12 * kLargePageSize, 2, AccessType::kWrite);
  Simulator sim(cfg);
  const RunResult r = sim.run(wl);
  EXPECT_GT(r.stats.writeback_pages, 0u);
  EXPECT_GT(r.stats.bytes_d2h, 0u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  SimConfig cfg = small_cfg();
  cfg.mem.oversubscription = 1.25;
  ScanWorkload wl1(8 * kLargePageSize, 2);
  ScanWorkload wl2(8 * kLargePageSize, 2);
  const RunResult a = Simulator(cfg).run(wl1);
  const RunResult b = Simulator(cfg).run(wl2);
  EXPECT_EQ(a.stats.kernel_cycles, b.stats.kernel_cycles);
  EXPECT_EQ(a.stats.far_faults, b.stats.far_faults);
  EXPECT_EQ(a.stats.pages_thrashed, b.stats.pages_thrashed);
}

TEST(Simulator, RunWorkloadHelperWorksForAllBenchmarks) {
  SimConfig cfg = small_cfg();
  WorkloadParams params;
  params.scale = 0.05;  // keep this smoke test fast
  for (const auto& name : workload_names()) {
    const RunResult r = run_workload(name, cfg, /*oversub=*/0.0, params);
    EXPECT_GT(r.stats.total_accesses, 0u) << name;
    EXPECT_GT(r.stats.kernel_cycles, 0u) << name;
  }
}

TEST(Simulator, InvalidConfigThrowsAtConstruction) {
  SimConfig cfg;
  cfg.policy.static_threshold = 0;
  EXPECT_THROW(Simulator{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace uvmsim
