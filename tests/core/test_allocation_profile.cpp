#include "core/allocation_profile.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/simulator.hpp"
#include "core/uvm_driver.hpp"

namespace uvmsim {
namespace {

TEST(AllocationClassToString, Names) {
  EXPECT_EQ(to_string(AllocationClass::kHot), "hot");
  EXPECT_EQ(to_string(AllocationClass::kCold), "cold");
  EXPECT_EQ(to_string(AllocationClass::kUntouched), "untouched");
}

TEST(AllocationProfileDriver, ClassifiesByDensity) {
  AddressSpace space;
  const AllocId hot = space.allocate("hot", kLargePageSize);
  const AllocId cold = space.allocate("cold", kLargePageSize);
  const AllocId idle = space.allocate("idle", kLargePageSize);
  (void)hot;
  (void)cold;
  (void)idle;

  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kAdaptive;  // historic counters, no migration noise
  EventQueue queue;
  SimStats stats;
  UvmDriver driver(cfg, space, 8 * kLargePageSize, queue, stats);
  driver.set_warp_waker([](WarpId, Cycle) {});

  // Dense traffic on "hot", a trickle on "cold", nothing on "idle".
  for (int i = 0; i < 100; ++i) {
    (void)driver.access(0, space.alloc(0).base, AccessType::kWrite, 16, 0);
  }
  (void)driver.access(0, space.alloc(1).base, AccessType::kRead, 1, 0);
  queue.run();

  std::map<std::string, AllocationProfile> byname;
  for (auto& p : classify_allocations(driver)) byname[p.name] = p;

  EXPECT_EQ(byname.at("hot").classification, AllocationClass::kHot);
  EXPECT_TRUE(byname.at("hot").written);
  EXPECT_EQ(byname.at("cold").classification, AllocationClass::kCold);
  EXPECT_FALSE(byname.at("cold").written);
  EXPECT_EQ(byname.at("idle").classification, AllocationClass::kUntouched);
  EXPECT_EQ(byname.at("idle").access_count, 0u);
  EXPECT_GT(byname.at("hot").accesses_per_kb, byname.at("cold").accesses_per_kb);
}

TEST(AllocationProfileRun, SsspSplitsHotAndCold) {
  WorkloadParams params;
  params.scale = 0.15;
  SimConfig cfg;
  cfg.gpu.num_sms = 8;
  cfg.gpu.warps_per_sm = 2;
  cfg.policy.policy = PolicyKind::kAdaptive;
  cfg.mem.eviction = EvictionKind::kLfu;

  const RunResult r = run_workload("sssp", cfg, 1.25, params);
  std::map<std::string, AllocationClass> cls;
  for (const auto& p : r.allocations) cls[p.name] = p.classification;

  // The paper's Fig 2b split, recovered from the driver's own counters.
  EXPECT_EQ(cls.at("dist"), AllocationClass::kHot);
  EXPECT_EQ(cls.at("graph_edges"), AllocationClass::kCold);
  EXPECT_EQ(cls.at("edge_weights"), AllocationClass::kCold);
}

TEST(AllocationProfileRun, RegularWorkloadIsUniformlyHot) {
  WorkloadParams params;
  params.scale = 0.1;
  SimConfig cfg;
  cfg.gpu.num_sms = 8;
  cfg.gpu.warps_per_sm = 2;
  // Classification needs the framework's historic counters; under the
  // Volta semantics of the static schemes, counts clear on migration.
  cfg.policy.policy = PolicyKind::kAdaptive;
  const RunResult r = run_workload("fdtd", cfg, 0.0, params);
  for (const auto& p : r.allocations) {
    EXPECT_EQ(p.classification, AllocationClass::kHot) << p.name;
  }
}

TEST(AllocationProfileRun, FormatProducesOneRowPerAllocation) {
  WorkloadParams params;
  params.scale = 0.1;
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  const RunResult r = run_workload("hotspot", cfg, 0.0, params);
  const std::string table = format_profiles(r.allocations);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 1 + 3);  // header + 3 allocs
  EXPECT_NE(table.find("temp"), std::string::npos);
  EXPECT_NE(table.find("power"), std::string::npos);
}

}  // namespace
}  // namespace uvmsim
