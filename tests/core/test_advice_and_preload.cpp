// Memory-advice hints (cudaMemAdvise model) and the classic copy-then-
// execute mode.
#include <gtest/gtest.h>

#include <map>

#include "core/simulator.hpp"
#include "core/uvm_driver.hpp"
#include "workloads/common.hpp"

namespace uvmsim {
namespace {

// --- AddressSpace advice plumbing ---------------------------------------

TEST(MemAdviceApi, AdviseByIdAndName) {
  AddressSpace s;
  const AllocId a = s.allocate("edges", kLargePageSize);
  EXPECT_EQ(s.alloc(a).advice, MemAdvice::kNone);
  s.advise(a, MemAdvice::kAccessedBy);
  EXPECT_EQ(s.alloc(a).advice, MemAdvice::kAccessedBy);
  EXPECT_TRUE(s.advise("edges", MemAdvice::kPreferredHost));
  EXPECT_EQ(s.alloc(a).advice, MemAdvice::kPreferredHost);
  EXPECT_FALSE(s.advise("nosuch", MemAdvice::kNone));
}

// --- Driver-level semantics ----------------------------------------------

class AdviceDriverTest : public ::testing::Test {
 protected:
  void build(MemAdvice advice, SimConfig cfg = SimConfig{}) {
    cfg_ = cfg;
    space_ = AddressSpace{};
    const AllocId id = space_.allocate("a", 4 * kLargePageSize);
    space_.advise(id, advice);
    queue_ = EventQueue{};
    stats_ = SimStats{};
    driver_ = std::make_unique<UvmDriver>(cfg_, space_, 8 * kLargePageSize, queue_, stats_);
    driver_->set_warp_waker([](WarpId, Cycle) {});
  }

  AccessOutcome access(VirtAddr addr, AccessType t = AccessType::kRead,
                       std::uint32_t count = 1) {
    const auto out = driver_->access(0, addr, t, count, queue_.now());
    queue_.run();
    return out;
  }

  SimConfig cfg_;
  AddressSpace space_;
  EventQueue queue_;
  SimStats stats_;
  std::unique_ptr<UvmDriver> driver_;
};

TEST_F(AdviceDriverTest, AccessedByNeverMigrates) {
  build(MemAdvice::kAccessedBy);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(access(0, i % 2 ? AccessType::kWrite : AccessType::kRead, 8).stalled);
  }
  EXPECT_EQ(stats_.far_faults, 0u);
  EXPECT_EQ(stats_.blocks_migrated, 0u);
  EXPECT_EQ(stats_.remote_accesses, 200u * 8u);
}

TEST_F(AdviceDriverTest, PreferredHostDelaysReadsMigratesWrites) {
  build(MemAdvice::kPreferredHost);  // first-touch global policy, ts = 8
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(access(0).stalled);  // below ts: soft pin holds
  }
  EXPECT_TRUE(access(0).stalled);  // 8th read crosses ts
  EXPECT_EQ(driver_->blocks().block(0).residence, Residence::kDevice);
  // Writes to another advised block migrate immediately (Volta semantics),
  // without prefetch expansion.
  const auto migrated = stats_.blocks_migrated;
  EXPECT_TRUE(access(addr_of_block(1), AccessType::kWrite).stalled);
  EXPECT_EQ(stats_.blocks_migrated, migrated + 1);
  EXPECT_GT(stats_.write_forced_migrations, 0u);
}

TEST_F(AdviceDriverTest, NoAdviceFollowsThePolicy) {
  build(MemAdvice::kNone);
  EXPECT_TRUE(access(0).stalled);  // first touch migrates under the baseline
}

// --- End-to-end: oracle hints behave like hard pinning --------------------

TEST(AdviceIntegration, AccessedByKeepsColdDataOffDevice) {
  WorkloadParams params;
  params.scale = 0.1;
  SimConfig cfg;
  cfg.gpu.num_sms = 8;
  cfg.gpu.warps_per_sm = 2;
  cfg.mem.oversubscription = 1.25;

  auto plain_wl = make_workload("ra", params);
  const RunResult plain = Simulator(cfg).run(*plain_wl);

  auto hinted_wl = make_workload("ra", params);
  Simulator hinted_sim(cfg);
  RunOptions hinted_opts;
  hinted_opts.advice_hook = [](AddressSpace& space) {
    ASSERT_TRUE(space.advise("update_table", MemAdvice::kAccessedBy));
  };
  const RunResult hinted = hinted_sim.run(*hinted_wl, hinted_opts);

  EXPECT_GT(hinted.stats.remote_accesses, 0u);
  EXPECT_LT(hinted.stats.pages_thrashed, plain.stats.pages_thrashed);
  EXPECT_LT(hinted.stats.bytes_h2d, plain.stats.bytes_h2d);
}

// --- Copy-then-execute ----------------------------------------------------

TEST(CopyThenExecute, PreloadsEverythingThenRunsFaultFree) {
  WorkloadParams params;
  params.scale = 0.1;
  SimConfig cfg;
  cfg.gpu.num_sms = 8;
  cfg.gpu.warps_per_sm = 2;
  cfg.copy_then_execute = true;

  auto wl = make_workload("fdtd", params);
  const RunResult r = Simulator(cfg).run(*wl);

  EXPECT_GT(r.preload_cycles, 0u);
  EXPECT_EQ(r.stats.far_faults, 0u);          // everything resident upfront
  EXPECT_EQ(r.stats.remote_accesses, 0u);
  EXPECT_EQ(r.stats.bytes_h2d, r.footprint_bytes);
  // Kernel time alone beats the UVM run's kernel time (no fault stalls) —
  // the reason "copy then execute" was the classic model.
  SimConfig uvm = cfg;
  uvm.copy_then_execute = false;
  auto wl2 = make_workload("fdtd", params);
  const RunResult u = Simulator(uvm).run(*wl2);
  EXPECT_LT(r.stats.kernel_cycles, u.stats.kernel_cycles);
}

TEST(CopyThenExecute, RefusesToOversubscribe) {
  WorkloadParams params;
  params.scale = 0.1;
  SimConfig cfg;
  cfg.copy_then_execute = true;
  cfg.mem.oversubscription = 1.25;
  auto wl = make_workload("fdtd", params);
  Simulator sim(cfg);
  EXPECT_THROW((void)sim.run(*wl), std::invalid_argument);
}

}  // namespace
}  // namespace uvmsim
