// Property-based tests for the thrash throttle: randomized fault sequences
// asserting the hysteresis invariants — pins only above the detection
// threshold, every pin expires after exactly one cooldown, a pinned block's
// expiry never extends while pinned (continuous faulting cannot deadlock a
// block into permanent host residence), and trim() is behavior-neutral.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mitigation/thrash_throttle.hpp"
#include "sim/rng.hpp"

namespace uvmsim {
namespace {

ThrashThrottleConfig make_cfg(Rng& rng) {
  ThrashThrottleConfig cfg;
  cfg.enabled = true;
  cfg.detect_faults = static_cast<std::uint32_t>(rng.between(1, 6));
  cfg.pin_cooldown = rng.between(1, 500000);
  return cfg;
}

// A fault below the detection threshold never pins, no matter the history.
TEST(ThrottleProperties, NeverPinsBelowDetectionThreshold) {
  Rng rng(0x7007a);
  for (int trial = 0; trial < 2000; ++trial) {
    const ThrashThrottleConfig cfg = make_cfg(rng);
    ThrashThrottle throttle(cfg);
    Cycle now = 0;
    for (int i = 0; i < 50; ++i) {
      now += rng.below(1000);
      const BlockNum b = rng.below(8);
      throttle.note_fault(b, now, static_cast<std::uint32_t>(rng.below(cfg.detect_faults)));
      ASSERT_FALSE(throttle.is_throttled(b, now));
    }
    ASSERT_EQ(throttle.pins(), 0u);
  }
}

// Disabled mitigation is inert regardless of inputs.
TEST(ThrottleProperties, DisabledNeverThrottles) {
  ThrashThrottleConfig cfg;  // enabled = false
  ThrashThrottle throttle(cfg);
  Rng rng(0x7007b);
  for (int i = 0; i < 1000; ++i) {
    const BlockNum b = rng.below(8);
    const Cycle now = rng.below(1u << 20);
    throttle.note_fault(b, now, static_cast<std::uint32_t>(rng.below(100)));
    ASSERT_FALSE(throttle.is_throttled(b, now));
  }
}

// Hysteresis never deadlocks: once pinned at cycle t, the block unpins at
// exactly t + cooldown even under continuous re-faulting while pinned —
// note_fault on an already-pinned block must not extend the pin, or a
// steadily thrashing block would stay host-pinned forever.
TEST(ThrottleProperties, ContinuousFaultingCannotExtendAPin) {
  Rng rng(0x7007c);
  for (int trial = 0; trial < 500; ++trial) {
    ThrashThrottleConfig cfg = make_cfg(rng);
    cfg.pin_cooldown = rng.between(10, 5000);
    ThrashThrottle throttle(cfg);
    const BlockNum b = 3;
    const Cycle t0 = rng.below(1u << 20);
    throttle.note_fault(b, t0, cfg.detect_faults);
    ASSERT_TRUE(throttle.is_throttled(b, t0));
    // Hammer the pinned block with eligible faults throughout the window.
    for (Cycle t = t0; t < t0 + cfg.pin_cooldown; t += 1 + rng.below(64)) {
      throttle.note_fault(b, t, cfg.detect_faults + 10);
      ASSERT_TRUE(throttle.is_throttled(b, t));
    }
    ASSERT_FALSE(throttle.is_throttled(b, t0 + cfg.pin_cooldown))
        << "pin outlived its cooldown under continuous faulting";
    ASSERT_EQ(throttle.pins(), 1u);
  }
}

// After expiry the next eligible fault re-pins for one more cooldown — the
// retry the paper describes ("migration is retried and typically re-pins").
TEST(ThrottleProperties, RepinsAfterExpiry) {
  Rng rng(0x7007d);
  for (int trial = 0; trial < 500; ++trial) {
    const ThrashThrottleConfig cfg = make_cfg(rng);
    ThrashThrottle throttle(cfg);
    const BlockNum b = rng.below(8);
    Cycle now = rng.below(1u << 20);
    for (int round = 1; round <= 4; ++round) {
      throttle.note_fault(b, now, cfg.detect_faults);
      ASSERT_TRUE(throttle.is_throttled(b, now));
      ASSERT_FALSE(throttle.is_throttled(b, now + cfg.pin_cooldown));
      ASSERT_EQ(throttle.pins(), static_cast<std::uint64_t>(round));
      now += cfg.pin_cooldown + rng.below(1000);
    }
  }
}

// Pins are per-block: pinning one block never throttles another.
TEST(ThrottleProperties, PinsAreIndependentAcrossBlocks) {
  Rng rng(0x7007e);
  for (int trial = 0; trial < 1000; ++trial) {
    const ThrashThrottleConfig cfg = make_cfg(rng);
    ThrashThrottle throttle(cfg);
    const Cycle now = rng.below(1u << 20);
    const BlockNum pinned = rng.below(8);
    throttle.note_fault(pinned, now, cfg.detect_faults);
    for (BlockNum b = 0; b < 8; ++b) {
      ASSERT_EQ(throttle.is_throttled(b, now), b == pinned);
    }
  }
}

// trim() frees tracking state but never changes any future is_throttled
// answer: dropping a pin is only legal once it can no longer fire.
TEST(ThrottleProperties, TrimIsBehaviorNeutral) {
  Rng rng(0x7007f);
  for (int trial = 0; trial < 500; ++trial) {
    const ThrashThrottleConfig cfg = make_cfg(rng);
    ThrashThrottle a(cfg);
    ThrashThrottle b(cfg);
    Cycle now = 0;
    for (int i = 0; i < 100; ++i) {
      now += rng.below(static_cast<std::uint64_t>(cfg.pin_cooldown) * 2 + 1);
      const BlockNum blk = rng.below(8);
      const auto trips = static_cast<std::uint32_t>(rng.below(cfg.detect_faults * 2));
      a.note_fault(blk, now, trips);
      b.note_fault(blk, now, trips);
      b.trim(now);  // only b trims, aggressively
      for (BlockNum q = 0; q < 8; ++q) {
        const Cycle probe = now + rng.below(static_cast<std::uint64_t>(cfg.pin_cooldown) * 2);
        ASSERT_EQ(a.is_throttled(q, probe), b.is_throttled(q, probe))
            << "trim changed behavior for block " << q << " at cycle " << probe;
      }
    }
    ASSERT_LE(b.tracked_blocks(), a.tracked_blocks());
  }
}

}  // namespace
}  // namespace uvmsim
