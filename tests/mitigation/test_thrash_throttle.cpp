#include "mitigation/thrash_throttle.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"

namespace uvmsim {
namespace {

ThrashThrottleConfig enabled_cfg() {
  ThrashThrottleConfig cfg;
  cfg.enabled = true;
  cfg.detect_faults = 3;
  cfg.pin_cooldown = 5000;
  return cfg;
}

TEST(ThrashThrottle, DisabledNeverThrottles) {
  ThrashThrottle t{ThrashThrottleConfig{}};
  for (int i = 0; i < 10; ++i) t.note_fault(7, 0, 100);
  EXPECT_FALSE(t.is_throttled(7, 0));
  EXPECT_EQ(t.pins(), 0u);
  EXPECT_EQ(t.tracked_blocks(), 0u);
}

TEST(ThrashThrottle, PinsOnceRoundTripsCrossThreshold) {
  ThrashThrottle t{enabled_cfg()};
  t.note_fault(7, 100, 2);  // below the threshold
  EXPECT_FALSE(t.is_throttled(7, 100));
  t.note_fault(7, 200, 3);  // at the threshold
  EXPECT_TRUE(t.is_throttled(7, 201));
  EXPECT_EQ(t.pins(), 1u);
}

TEST(ThrashThrottle, PinExpiresAfterCooldownThenRePins) {
  ThrashThrottle t{enabled_cfg()};
  t.note_fault(7, 0, 3);
  EXPECT_TRUE(t.is_throttled(7, 4999));
  EXPECT_FALSE(t.is_throttled(7, 5000));
  t.note_fault(7, 6000, 4);  // still thrashing: re-pins
  EXPECT_TRUE(t.is_throttled(7, 6001));
  EXPECT_EQ(t.pins(), 2u);
}

TEST(ThrashThrottle, ActivePinIsNotExtended) {
  ThrashThrottle t{enabled_cfg()};
  t.note_fault(7, 0, 3);
  t.note_fault(7, 1000, 4);  // already pinned: no new pin event
  EXPECT_EQ(t.pins(), 1u);
  EXPECT_FALSE(t.is_throttled(7, 5000));
}

TEST(ThrashThrottle, BlocksAreIndependent) {
  ThrashThrottle t{enabled_cfg()};
  t.note_fault(7, 0, 5);
  EXPECT_TRUE(t.is_throttled(7, 10));
  EXPECT_FALSE(t.is_throttled(8, 10));
}

TEST(ThrashThrottle, TrimDropsExpiredPins) {
  ThrashThrottle t{enabled_cfg()};
  t.note_fault(1, 0, 3);
  t.note_fault(2, 0, 3);
  EXPECT_EQ(t.tracked_blocks(), 2u);
  t.trim(10000);
  EXPECT_EQ(t.tracked_blocks(), 0u);
  t.note_fault(3, 20000, 3);
  t.trim(20001);  // still pinned: kept
  EXPECT_EQ(t.tracked_blocks(), 1u);
}

// Integration: the mitigation reduces migration traffic of the thrashing
// baseline but is beaten by the paper's adaptive scheme.
TEST(ThrashThrottleIntegration, ReducesBaselineThrashUnderOversubscription) {
  WorkloadParams params;
  params.scale = 0.5;

  SimConfig plain;  // first-touch + LRU
  SimConfig throttled = plain;
  throttled.mitigation.enabled = true;

  const RunResult base = run_workload("ra", plain, 1.25, params);
  const RunResult mitigated = run_workload("ra", throttled, 1.25, params);

  EXPECT_LT(mitigated.stats.pages_thrashed, base.stats.pages_thrashed);
  EXPECT_LT(mitigated.stats.kernel_cycles, base.stats.kernel_cycles);
  EXPECT_GT(mitigated.stats.remote_accesses, 0u);
}

TEST(ThrashThrottleIntegration, BothMitigationAndAdaptiveBeatPlainBaseline) {
  // On ra, per-block pinning converges to hard host-pinning, which Fig 8
  // already showed is near-optimal for this workload (p = 2^20); we assert
  // only that both approaches beat the unmitigated baseline — their mutual
  // ordering is workload-dependent (see the ablation bench).
  WorkloadParams params;
  params.scale = 0.5;

  SimConfig plain;
  SimConfig throttled = plain;
  throttled.mitigation.enabled = true;
  SimConfig adaptive;
  adaptive.policy.policy = PolicyKind::kAdaptive;
  adaptive.mem.eviction = EvictionKind::kLfu;

  const RunResult base = run_workload("ra", plain, 1.25, params);
  const RunResult mitigated = run_workload("ra", throttled, 1.25, params);
  const RunResult adapt = run_workload("ra", adaptive, 1.25, params);
  EXPECT_LT(adapt.stats.kernel_cycles, base.stats.kernel_cycles);
  EXPECT_LT(mitigated.stats.kernel_cycles, base.stats.kernel_cycles);
}

TEST(ThrashThrottleIntegration, NoEffectWhenWorkingSetFits) {
  WorkloadParams params;
  params.scale = 0.3;
  SimConfig plain;
  SimConfig throttled = plain;
  throttled.mitigation.enabled = true;
  const RunResult a = run_workload("fdtd", plain, 0.0, params);
  const RunResult b = run_workload("fdtd", throttled, 0.0, params);
  EXPECT_EQ(a.stats.kernel_cycles, b.stats.kernel_cycles);
}

}  // namespace
}  // namespace uvmsim
