// Lexer unit tests: the properties rules rely on — comments and string
// literals never reach the token stream, #includes come out structured, line
// numbers survive continuations and raw strings, suppressions parse.
#include <gtest/gtest.h>

#include <algorithm>

#include "analyze/lexer.hpp"

namespace ua = uvmsim::analyze;

namespace {

[[nodiscard]] bool has_ident(const ua::SourceFile& f, std::string_view text) {
  return std::any_of(f.tokens.begin(), f.tokens.end(), [&](const ua::Token& t) {
    return t.kind == ua::TokenKind::kIdentifier && t.text == text;
  });
}

TEST(AnalyzeLexer, CommentsAndStringsDoNotLeakIntoTokens) {
  const ua::SourceFile f = ua::lex_file("a.cpp",
                                        "// rand() in a comment\n"
                                        "/* srand() in a block */\n"
                                        "const char* s = \"rand()\";\n"
                                        "int x = real_token;\n");
  EXPECT_FALSE(has_ident(f, "rand"));
  EXPECT_FALSE(has_ident(f, "srand"));
  EXPECT_TRUE(has_ident(f, "real_token"));
  ASSERT_EQ(f.comments.size(), 2u);
  EXPECT_EQ(f.comments[0].text, " rand() in a comment");
}

TEST(AnalyzeLexer, StringTokenTextExcludesQuotes) {
  const ua::SourceFile f = ua::lex_file("a.cpp", "auto s = \"hello\";\n");
  const auto it = std::find_if(f.tokens.begin(), f.tokens.end(), [](const ua::Token& t) {
    return t.kind == ua::TokenKind::kString;
  });
  ASSERT_NE(it, f.tokens.end());
  EXPECT_EQ(it->text, "hello");
}

TEST(AnalyzeLexer, RawStringsAreDecodedNotTokenized) {
  const ua::SourceFile f = ua::lex_file(
      "a.cpp", "auto s = R\"(rand() \"quoted\" // not a comment)\";\nint after = 1;\n");
  EXPECT_FALSE(has_ident(f, "rand"));
  EXPECT_TRUE(has_ident(f, "after"));
  const auto it = std::find_if(f.tokens.begin(), f.tokens.end(), [](const ua::Token& t) {
    return t.kind == ua::TokenKind::kString;
  });
  ASSERT_NE(it, f.tokens.end());
  EXPECT_EQ(it->text, "rand() \"quoted\" // not a comment");
  // The token after the raw string is on the next physical line.
  const auto after = std::find_if(f.tokens.begin(), f.tokens.end(), [](const ua::Token& t) {
    return t.text == "after";
  });
  ASSERT_NE(after, f.tokens.end());
  EXPECT_EQ(after->line, 2);
}

TEST(AnalyzeLexer, MultiLineRawStringKeepsLineNumbers) {
  const ua::SourceFile f =
      ua::lex_file("a.cpp", "auto s = R\"x(line1\nline2\nline3)x\";\nint tail = 0;\n");
  const auto tail = std::find_if(f.tokens.begin(), f.tokens.end(), [](const ua::Token& t) {
    return t.text == "tail";
  });
  ASSERT_NE(tail, f.tokens.end());
  EXPECT_EQ(tail->line, 4);
}

TEST(AnalyzeLexer, IncludesAreStructured) {
  const ua::SourceFile f = ua::lex_file("a.cpp",
                                        "#include \"core/uvm_driver.hpp\"\n"
                                        "#include <vector>\n"
                                        "// #include \"commented/out.hpp\"\n");
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].target, "core/uvm_driver.hpp");
  EXPECT_FALSE(f.includes[0].angled);
  EXPECT_EQ(f.includes[0].line, 1);
  EXPECT_EQ(f.includes[1].target, "vector");
  EXPECT_TRUE(f.includes[1].angled);
}

TEST(AnalyzeLexer, LineContinuationPreservesNumbering) {
  const ua::SourceFile f = ua::lex_file("a.cpp",
                                        "#define M(x) \\\n"
                                        "  do_thing(x)\n"
                                        "int after = 0;\n");
  const auto after = std::find_if(f.tokens.begin(), f.tokens.end(), [](const ua::Token& t) {
    return t.text == "after";
  });
  ASSERT_NE(after, f.tokens.end());
  EXPECT_EQ(after->line, 3);
}

TEST(AnalyzeLexer, MultiCharPunctuationIsOneToken) {
  const ua::SourceFile f = ua::lex_file("a.cpp", "a::b->c >>= d;\n");
  std::vector<std::string> puncts;
  for (const ua::Token& t : f.tokens)
    if (t.kind == ua::TokenKind::kPunct) puncts.push_back(t.text);
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "::"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "->"), puncts.end());
}

TEST(AnalyzeLexer, SuppressionParses) {
  const ua::SourceFile f =
      ua::lex_file("a.cpp", "int x; // UVMSIM-ALLOW(determinism): seeded elsewhere\n");
  ASSERT_EQ(f.suppressions.size(), 1u);
  EXPECT_EQ(f.suppressions[0].rule, "determinism");
  EXPECT_EQ(f.suppressions[0].reason, "seeded elsewhere");
  EXPECT_EQ(f.suppressions[0].line, 1);
}

TEST(AnalyzeLexer, SuppressionWithEmptyReasonIsKeptForReporting) {
  const ua::SourceFile f = ua::lex_file("a.cpp", "int x; // UVMSIM-ALLOW(layering):\n");
  ASSERT_EQ(f.suppressions.size(), 1u);
  EXPECT_TRUE(f.suppressions[0].reason.empty());
}

TEST(AnalyzeLexer, PlaceholderMentionIsNotASuppression) {
  // Documentation that *mentions* the syntax must not register a suppression.
  const ua::SourceFile f =
      ua::lex_file("a.cpp", "// write UVMSIM-ALLOW(<rule>): <reason> on the line\n");
  EXPECT_TRUE(f.suppressions.empty());
}

}  // namespace
