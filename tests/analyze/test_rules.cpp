// Fixture tests for each uvmsim-analyze rule: a minimal in-memory corpus per
// scenario, asserting that the violation is detected, that clean code stays
// clean, and that suppressions and baselines behave per docs/ANALYSIS.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analysis.hpp"

namespace ua = uvmsim::analyze;

namespace {

[[nodiscard]] ua::AnalysisResult run(const ua::Corpus& corpus,
                                     std::vector<std::string> rules = {}) {
  ua::AnalysisOptions opts;
  opts.rules = std::move(rules);
  return ua::run_analysis(corpus, opts);
}

[[nodiscard]] std::size_t count_rule(const ua::AnalysisResult& r, std::string_view rule) {
  return static_cast<std::size_t>(std::count_if(
      r.findings.begin(), r.findings.end(),
      [&](const ua::Finding& f) { return f.rule == rule; }));
}

// ---- layering -----------------------------------------------------------

TEST(RuleLayering, ForbiddenEdgeIsReported) {
  ua::Corpus c;
  c.add_file("src/core/uvm_driver.hpp", "struct UvmDriver {};\n");
  c.add_file("src/policy/p.cpp", "#include \"core/uvm_driver.hpp\"\n");
  const ua::AnalysisResult r = run(c, {"layering"});
  ASSERT_EQ(count_rule(r, "layering"), 1u);
  EXPECT_NE(r.findings[0].message.find("policy -> core"), std::string::npos);
  EXPECT_EQ(r.findings[0].file, "src/policy/p.cpp");
  EXPECT_EQ(r.findings[0].line, 1);
  EXPECT_EQ(r.exit_code(), 1);
}

TEST(RuleLayering, AllowedEdgeIsClean) {
  ua::Corpus c;
  c.add_file("src/sim/types.hpp", "using Cycle = unsigned long long;\n");
  c.add_file("src/policy/p.cpp", "#include \"sim/types.hpp\"\n");
  EXPECT_TRUE(run(c, {"layering"}).clean());
}

TEST(RuleLayering, SystemIncludesCarryNoLayeringInfo) {
  ua::Corpus c;
  c.add_file("src/policy/p.cpp", "#include <vector>\n#include <core/fake.hpp>\n");
  EXPECT_TRUE(run(c, {"layering"}).clean());
}

TEST(RuleLayering, UnknownModuleIsReported) {
  ua::Corpus c;
  c.add_file("src/sim/types.hpp", "using Cycle = unsigned long long;\n");
  c.add_file("src/newmod/a.cpp", "#include \"sim/types.hpp\"\n");
  const ua::AnalysisResult r = run(c, {"layering"});
  ASSERT_EQ(count_rule(r, "layering"), 1u);
  EXPECT_NE(r.findings[0].message.find("not in the layering table"), std::string::npos);
}

TEST(RuleLayering, ObservedCycleIsReported) {
  // multigpu -> engine is allowed; engine -> multigpu is both a forbidden
  // edge and closes a cycle — the cycle gets its own finding.
  ua::Corpus c;
  c.add_file("src/multigpu/m.hpp", "#include \"core/simulator.hpp\"\n");
  c.add_file("src/core/simulator.hpp", "#include \"multigpu/m.hpp\"\n");
  const ua::AnalysisResult r = run(c, {"layering"});
  EXPECT_GE(count_rule(r, "layering"), 2u);
  EXPECT_TRUE(std::any_of(r.findings.begin(), r.findings.end(), [](const ua::Finding& f) {
    return f.message.find("cyclic") != std::string::npos;
  }));
}

// ---- determinism --------------------------------------------------------

TEST(RuleDeterminism, BareAndStdQualifiedRandAreFlagged) {
  ua::Corpus c;
  c.add_file("src/mem/a.cpp", "int f() { return rand(); }\n");
  c.add_file("src/mem/b.cpp", "int g() { return std::rand(); }\n");
  EXPECT_EQ(count_rule(run(c, {"determinism"}), "determinism"), 2u);
}

TEST(RuleDeterminism, CommentsStringsAndForeignQualifiersAreNotFlagged) {
  ua::Corpus c;
  c.add_file("src/mem/a.cpp",
             "// rand() is banned\n"
             "const char* doc = \"call rand() never\";\n"
             "int h() { return MyRng::random(); }\n"
             "int strand_count(Strand& s) { return s.rand(); }\n");
  EXPECT_TRUE(run(c, {"determinism"}).clean());
}

TEST(RuleDeterminism, RandomDeviceIsFlaggedAnywhere) {
  ua::Corpus c;
  c.add_file("src/sim/a.cpp", "std::mt19937 rng{std::random_device{}()};\n");
  EXPECT_EQ(count_rule(run(c, {"determinism"}), "determinism"), 1u);
}

TEST(RuleDeterminism, ChronoClockNowIsFlaggedThroughAliases) {
  ua::Corpus c;
  c.add_file("src/obs/t.cpp",
             "using Clock = std::chrono::steady_clock;\n"
             "auto t0 = Clock::now();\n"
             "auto t1 = std::chrono::system_clock::now();\n");
  EXPECT_EQ(count_rule(run(c, {"determinism"}), "determinism"), 2u);
}

TEST(RuleDeterminism, TelemetryWhitelistExemptsTheBatchRunner) {
  ua::Corpus c;
  c.add_file("src/sim/runner.cpp",
             "auto t0 = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(run(c, {"determinism"}).clean());
}

TEST(RuleDeterminism, UnorderedRangeForIsFlagged) {
  ua::Corpus c;
  c.add_file("src/mem/a.cpp",
             "std::unordered_map<int, int> m_;\n"
             "void f() { for (const auto& kv : m_) { use(kv); } }\n");
  EXPECT_EQ(count_rule(run(c, {"determinism"}), "determinism"), 1u);
}

TEST(RuleDeterminism, MemberDeclaredInHeaderIsCaughtInCpp) {
  ua::Corpus c;
  c.add_file("src/mem/a.hpp", "struct S { std::unordered_map<int, int> m_; };\n");
  c.add_file("src/mem/a.cpp",
             "void S::f() { for (auto it = m_.begin(); it != m_.end(); ++it) {} }\n");
  EXPECT_EQ(count_rule(run(c, {"determinism"}), "determinism"), 1u);
}

TEST(RuleDeterminism, OrderedMapIterationIsClean) {
  ua::Corpus c;
  c.add_file("src/mem/a.cpp",
             "std::map<int, int> m_;\n"
             "void f() { for (const auto& kv : m_) { use(kv); } }\n");
  EXPECT_TRUE(run(c, {"determinism"}).clean());
}

// ---- obs-purity ---------------------------------------------------------

namespace fixtures {

constexpr const char* kDriver =
    "class UvmDriver {\n"
    " public:\n"
    "  void preload_all();\n"
    "  int features() const;\n"
    "  int probe();\n"
    "  int probe() const;\n"
    "};\n";

}  // namespace fixtures

TEST(RuleObsPurity, SinkCallingMutatorIsFlagged) {
  ua::Corpus c;
  c.add_file("src/core/uvm_driver.hpp", fixtures::kDriver);
  c.add_file("src/obs/my_sink.cpp",
             "void record(UvmDriver& d) { d.preload_all(); }\n");
  const ua::AnalysisResult r = run(c, {"obs-purity"});
  ASSERT_EQ(count_rule(r, "obs-purity"), 1u);
  EXPECT_NE(r.findings[0].message.find("preload_all"), std::string::npos);
}

TEST(RuleObsPurity, ConstCallsAndConstOverloadedNamesAreClean) {
  ua::Corpus c;
  c.add_file("src/core/uvm_driver.hpp", fixtures::kDriver);
  // features() is const; probe() has a const overload so the name is
  // ambiguous at token level and deliberately not flagged.
  c.add_file("src/obs/my_sink.cpp",
             "void record(UvmDriver& d) { d.features(); d.probe(); }\n");
  EXPECT_TRUE(run(c, {"obs-purity"}).clean());
}

TEST(RuleObsPurity, TraceSinkImplementationOutsideObsIsCovered) {
  ua::Corpus c;
  c.add_file("src/core/uvm_driver.hpp", fixtures::kDriver);
  c.add_file("src/trace/my_sink.hpp",
             "class Recorder : public TraceSink {\n"
             "  UvmDriver* d_;\n"
             "  void on_fault() { d_->preload_all(); }\n"
             "};\n");
  EXPECT_EQ(count_rule(run(c, {"obs-purity"}), "obs-purity"), 1u);
}

TEST(RuleObsPurity, NonSinkCoreCodeMayMutate) {
  ua::Corpus c;
  c.add_file("src/core/uvm_driver.hpp", fixtures::kDriver);
  c.add_file("src/core/simulator.cpp",
             "void drive(UvmDriver& d) { d.preload_all(); }\n");
  EXPECT_TRUE(run(c, {"obs-purity"}).clean());
}

// ---- check-coverage -----------------------------------------------------

TEST(RuleCheckCoverage, BareAssertAndAbortAreFlaggedOutsideCheck) {
  ua::Corpus c;
  c.add_file("src/mem/a.cpp", "void f(bool ok) { assert(ok); if (!ok) std::abort(); }\n");
  EXPECT_EQ(count_rule(run(c, {"check-coverage"}), "check-coverage"), 2u);
}

TEST(RuleCheckCoverage, SrcCheckAndUvmCheckAreExempt) {
  ua::Corpus c;
  c.add_file("src/check/harness.cpp", "void f(bool ok) { assert(ok); abort(); }\n");
  c.add_file("src/mem/b.cpp", "void g(bool ok) { UVM_CHECK(ok, \"context\"); }\n");
  EXPECT_TRUE(run(c, {"check-coverage"}).clean());
}

// ---- registry-hygiene ---------------------------------------------------

namespace fixtures {

constexpr const char* kStats =
    "struct SimStats {\n"
    "  std::uint64_t total_accesses = 0;\n"
    "  Cycle total_cycles = 0;\n"
    "  std::string last_violation;\n"  // non-numeric: outside the schema
    "};\n";

}  // namespace fixtures

TEST(RuleRegistryHygiene, FieldAndEntryDriftIsReportedBothWays) {
  ua::Corpus c;
  c.add_file("src/sim/stats.hpp", fixtures::kStats);
  c.add_file("src/obs/metrics.def",
             "UVMSIM_METRIC(total_accesses, Counter, access, \"doc\")\n"
             "UVMSIM_METRIC(stale_entry, Counter, access, \"doc\")\n");
  const ua::AnalysisResult r = run(c, {"registry-hygiene"});
  ASSERT_EQ(count_rule(r, "registry-hygiene"), 2u);
  EXPECT_TRUE(std::any_of(r.findings.begin(), r.findings.end(), [](const ua::Finding& f) {
    return f.message.find("total_cycles") != std::string::npos;
  }));
  EXPECT_TRUE(std::any_of(r.findings.begin(), r.findings.end(), [](const ua::Finding& f) {
    return f.message.find("stale_entry") != std::string::npos;
  }));
}

TEST(RuleRegistryHygiene, MatchingRegistryIsClean) {
  ua::Corpus c;
  c.add_file("src/sim/stats.hpp", fixtures::kStats);
  c.add_file("src/obs/metrics.def",
             "UVMSIM_METRIC(total_accesses, Counter, access, \"doc\")\n"
             "UVMSIM_METRIC(total_cycles, Counter, timing, \"doc\")\n");
  EXPECT_TRUE(run(c, {"registry-hygiene"}).clean());
}

TEST(RuleRegistryHygiene, UndocumentedPolicySlugIsReported) {
  ua::Corpus c;
  c.add_file("src/policy/p.cpp", "void reg(R& r) { r.add({\"mypol\", \"doc\", f}); }\n");
  c.extra_files.emplace_back("docs/POLICIES.md", "# Policies\n| `baseline` | ... |\n");
  const ua::AnalysisResult r = run(c, {"registry-hygiene"});
  ASSERT_EQ(count_rule(r, "registry-hygiene"), 1u);
  EXPECT_NE(r.findings[0].message.find("mypol"), std::string::npos);
}

TEST(RuleRegistryHygiene, DocumentedSlugAndRegistrarFormClean) {
  ua::Corpus c;
  c.add_file("src/policy/p.cpp",
             "void reg(R& r) { r.add({\"mypol\", \"doc\", f}); }\n"
             "const PolicyRegistrar kReg{\"otherpol\", \"doc\", g};\n");
  c.extra_files.emplace_back("docs/POLICIES.md",
                             "| `mypol` | ... |\n| `otherpol` | ... |\n");
  EXPECT_TRUE(run(c, {"registry-hygiene"}).clean());
}

namespace fixtures {

/// Minimal factory table in the shape of src/workloads/registry.cpp.
constexpr const char* kWorkloadRegistry =
    "const Entry kTable[] = {\n"
    "    {\"foo\", make_foo},\n"
    "    {\"bar\", make_bar},\n"
    "};\n";

}  // namespace fixtures

TEST(RuleRegistryHygiene, UndocumentedWorkloadSlugIsReported) {
  ua::Corpus c;
  c.add_file("src/workloads/registry.cpp", fixtures::kWorkloadRegistry);
  c.extra_files.emplace_back("docs/WORKLOADS.md", "# Workloads\n* `foo` — documented\n");
  const ua::AnalysisResult r = run(c, {"registry-hygiene"});
  ASSERT_EQ(count_rule(r, "registry-hygiene"), 1u);
  EXPECT_NE(r.findings[0].message.find("'bar'"), std::string::npos);
  EXPECT_EQ(r.findings[0].file, "src/workloads/registry.cpp");
}

TEST(RuleRegistryHygiene, FullyDocumentedWorkloadTableIsClean) {
  ua::Corpus c;
  c.add_file("src/workloads/registry.cpp", fixtures::kWorkloadRegistry);
  c.extra_files.emplace_back("docs/WORKLOADS.md", "* `foo` — x\n* `bar` — y\n");
  EXPECT_TRUE(run(c, {"registry-hygiene"}).clean());
}

TEST(RuleRegistryHygiene, MissingWorkloadsDocIsItselfReported) {
  ua::Corpus c;
  c.add_file("src/workloads/registry.cpp", fixtures::kWorkloadRegistry);
  const ua::AnalysisResult r = run(c, {"registry-hygiene"});
  ASSERT_EQ(count_rule(r, "registry-hygiene"), 1u);
  EXPECT_NE(r.findings[0].message.find("docs/WORKLOADS.md"), std::string::npos);
}

TEST(RuleRegistryHygiene, NonFactoryBracesAreNotMistakenForSlugs) {
  // String-comma pairs whose third token is not a make_* factory (dispatch
  // tables, error messages) must not be treated as registered workloads.
  ua::Corpus c;
  c.add_file("src/workloads/registry.cpp",
             "const char* kPair[] = {\"not_a_slug\", other_symbol};\n");
  EXPECT_TRUE(run(c, {"registry-hygiene"}).clean());
}

// ---- suppressions -------------------------------------------------------

TEST(Suppressions, ReasonedAllowOnSameLineSilences) {
  ua::Corpus c;
  c.add_file("src/mem/a.cpp",
             "int f() { return rand(); }  // UVMSIM-ALLOW(determinism): fixture reason\n");
  const ua::AnalysisResult r = run(c, {"determinism"});
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(Suppressions, ReasonedAllowOnLineAboveSilences) {
  ua::Corpus c;
  c.add_file("src/mem/a.cpp",
             "// UVMSIM-ALLOW(determinism): fixture reason\n"
             "int f() { return rand(); }\n");
  const ua::AnalysisResult r = run(c, {"determinism"});
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(Suppressions, WrongRuleDoesNotSilence) {
  ua::Corpus c;
  c.add_file("src/mem/a.cpp",
             "int f() { return rand(); }  // UVMSIM-ALLOW(layering): wrong rule\n");
  EXPECT_EQ(count_rule(run(c, {"determinism"}), "determinism"), 1u);
}

TEST(Suppressions, ReasonlessAllowIsItsOwnFinding) {
  ua::Corpus c;
  c.add_file("src/mem/a.cpp", "int f() { return rand(); }  // UVMSIM-ALLOW(determinism):\n");
  const ua::AnalysisResult r = run(c, {"determinism"});
  EXPECT_EQ(count_rule(r, "determinism"), 1u);  // not silenced
  EXPECT_EQ(count_rule(r, "suppression"), 1u);
  EXPECT_FALSE(r.clean());
}

TEST(Suppressions, UnknownRuleAllowIsReported) {
  ua::Corpus c;
  c.add_file("src/mem/a.cpp", "int x;  // UVMSIM-ALLOW(no-such-rule): reason\n");
  const ua::AnalysisResult r = run(c);
  EXPECT_EQ(count_rule(r, "suppression"), 1u);
}

// ---- baseline -----------------------------------------------------------

TEST(Baseline, RoundTripNeutralizesKnownFindings) {
  ua::Corpus c;
  c.add_file("src/mem/a.cpp", "int f() { return rand(); }\n");

  const ua::AnalysisResult first = run(c, {"determinism"});
  ASSERT_EQ(first.findings.size(), 1u);

  std::stringstream ss;
  ua::write_baseline(ss, first.findings);

  ua::AnalysisOptions opts;
  opts.rules = {"determinism"};
  opts.baseline = ua::load_baseline(ss);
  const ua::AnalysisResult second = ua::run_analysis(c, opts);
  EXPECT_TRUE(second.findings.empty());
  ASSERT_EQ(second.baselined.size(), 1u);
  EXPECT_EQ(second.baselined[0].fingerprint(), first.findings[0].fingerprint());
  EXPECT_EQ(second.exit_code(), 0);
}

TEST(Baseline, FingerprintIsLineNumberFree) {
  // Shifting the violation down a line must not invalidate the baseline.
  ua::Corpus c1;
  c1.add_file("src/mem/a.cpp", "int f() { return rand(); }\n");
  ua::Corpus c2;
  c2.add_file("src/mem/a.cpp", "\n\nint f() { return rand(); }\n");
  const ua::AnalysisResult r1 = run(c1, {"determinism"});
  const ua::AnalysisResult r2 = run(c2, {"determinism"});
  ASSERT_EQ(r1.findings.size(), 1u);
  ASSERT_EQ(r2.findings.size(), 1u);
  EXPECT_EQ(r1.findings[0].fingerprint(), r2.findings[0].fingerprint());
  EXPECT_NE(r1.findings[0].line, r2.findings[0].line);
}

TEST(Baseline, LoaderSkipsCommentsAndBlankLines) {
  std::stringstream ss("# header\n\nrule|file|message\n");
  const std::vector<std::string> lines = ua::load_baseline(ss);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "rule|file|message");
}

// ---- report plumbing ----------------------------------------------------

TEST(Reports, FindingsAreStableSorted) {
  ua::Corpus c;
  c.add_file("src/mem/b.cpp", "int f() { return rand(); }\n");
  c.add_file("src/mem/a.cpp", "int g() { return rand(); }\nint h() { return srand(0); }\n");
  const ua::AnalysisResult r = run(c, {"determinism"});
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].file, "src/mem/a.cpp");
  EXPECT_EQ(r.findings[1].file, "src/mem/a.cpp");
  EXPECT_LT(r.findings[0].line, r.findings[1].line);
  EXPECT_EQ(r.findings[2].file, "src/mem/b.cpp");
}

TEST(Reports, UnknownRuleSelectionThrows) {
  const ua::Corpus c;
  ua::AnalysisOptions opts;
  opts.rules = {"no-such-rule"};
  EXPECT_THROW((void)ua::run_analysis(c, opts), std::invalid_argument);
}

}  // namespace
