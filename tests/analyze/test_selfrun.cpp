// Integration tests over the real tree: the repo must analyze clean with an
// EMPTY baseline (the acceptance bar for every PR), and the CLI must fail
// loudly when a violation is injected into a copy of the tree.
//
// UVMSIM_SOURCE_DIR / UVMSIM_ANALYZE_BIN are baked in by tests/CMakeLists.txt
// so the tests work from any ctest working directory.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "analyze/analysis.hpp"

namespace ua = uvmsim::analyze;
namespace fs = std::filesystem;

namespace {

TEST(SelfRun, RepoIsAnalyzeCleanWithEmptyBaseline) {
  const ua::Corpus corpus = ua::load_corpus(UVMSIM_SOURCE_DIR);
  const ua::AnalysisResult result = ua::run_analysis(corpus, ua::AnalysisOptions{});
  for (const ua::Finding& f : result.findings)
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] " << f.message;
  EXPECT_TRUE(result.clean());
  EXPECT_TRUE(result.baselined.empty()) << "self-run must not rely on a baseline";
  EXPECT_EQ(result.rules_run.size(), 5u);
}

TEST(SelfRun, CheckedInBaselineIsEmpty) {
  std::ifstream is(fs::path(UVMSIM_SOURCE_DIR) / "tools/uvmsim_analyze.baseline");
  ASSERT_TRUE(is.is_open());
  EXPECT_TRUE(ua::load_baseline(is).empty())
      << "tools/uvmsim_analyze.baseline must ship empty — fix violations instead";
}

TEST(SelfRun, EverySuppressionInTheTreeCarriesAReason) {
  const ua::Corpus corpus = ua::load_corpus(UVMSIM_SOURCE_DIR);
  for (const ua::SourceFile& file : corpus.files) {
    for (const ua::Suppression& s : file.suppressions)
      EXPECT_FALSE(s.reason.empty()) << file.path << ":" << s.line;
  }
}

// ---- CLI over a doctored tree -------------------------------------------

class CliInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_ = fs::temp_directory_path() /
            ("uvmsim_analyze_inj_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(tree_);
    const fs::path src(UVMSIM_SOURCE_DIR);
    fs::create_directories(tree_);
    fs::copy(src / "src", tree_ / "src", fs::copy_options::recursive);
    fs::copy(src / "docs", tree_ / "docs", fs::copy_options::recursive);
  }

  void TearDown() override { fs::remove_all(tree_); }

  void append(const std::string& rel, const std::string& text) {
    std::ofstream os(tree_ / rel, std::ios::app);
    ASSERT_TRUE(os.is_open()) << rel;
    os << text;
  }

  [[nodiscard]] int run_cli(const std::string& extra_args = "") const {
    const std::string cmd = std::string(UVMSIM_ANALYZE_BIN) + " --root " + tree_.string() +
                            (extra_args.empty() ? "" : " " + extra_args) +
                            " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  fs::path tree_;
};

TEST_F(CliInjectionTest, CleanCopyExitsZero) { EXPECT_EQ(run_cli(), 0); }

TEST_F(CliInjectionTest, ForbiddenPolicyToCoreIncludeFails) {
  append("src/policy/migration_policy.hpp", "#include \"core/uvm_driver.hpp\"\n");
  EXPECT_EQ(run_cli(), 1);
}

TEST_F(CliInjectionTest, BareRandFails) {
  append("src/workloads/graph_gen.cpp",
         "namespace { int injected_noise() { return rand(); } }\n");
  EXPECT_EQ(run_cli(), 1);
}

TEST_F(CliInjectionTest, ReasonlessSuppressionFails) {
  append("src/workloads/graph_gen.cpp",
         "// UVMSIM-ALLOW(determinism):\n"
         "namespace { int injected_noise() { return rand(); } }\n");
  EXPECT_EQ(run_cli(), 1);
}

TEST_F(CliInjectionTest, WriteBaselineThenBaselineNeutralizes) {
  append("src/workloads/graph_gen.cpp",
         "namespace { int injected_noise() { return rand(); } }\n");
  const std::string baseline = (tree_ / "inj.baseline").string();
  EXPECT_EQ(run_cli("--write-baseline " + baseline), 0);
  EXPECT_EQ(run_cli("--baseline " + baseline), 0);
}

TEST_F(CliInjectionTest, GarbageFlagsExitTwo) {
  EXPECT_EQ(run_cli("--rules no-such-rule"), 2);
  EXPECT_EQ(run_cli("--max-findings banana"), 2);
  EXPECT_EQ(run_cli("--no-such-flag"), 2);
}

}  // namespace
