// Property-based tests for the migration policies: randomized sweeps over
// the full input domain asserting the algebraic properties the paper's
// Equation 1 promises, instead of spot-checking a handful of points.
// Deterministic by construction (uvmsim::Rng, fixed seeds).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "policy/migration_policy.hpp"
#include "sim/rng.hpp"

namespace uvmsim {
namespace {

constexpr std::uint32_t kThresholds[] = {1, 2, 4, 8, 16, 32};
constexpr std::uint64_t kPenalties[] = {1, 2, 4, 8, 1024, 1048576};

// While never oversubscribed, Equation 1 interpolates between first-touch
// and the static threshold: 1 <= td <= ts + 1 whenever resident <= capacity.
TEST(PolicyProperties, AdaptiveThresholdBoundsNotOversubscribed) {
  Rng rng(0xbead1);
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t ts = kThresholds[rng.below(std::size(kThresholds))];
    const std::uint64_t capacity = rng.between(1, 1u << 20);
    const std::uint64_t resident = rng.below(capacity + 1);  // <= capacity
    const std::uint64_t p = kPenalties[rng.below(std::size(kPenalties))];
    const std::uint64_t td =
        adaptive_threshold(ts, resident, capacity, /*oversubscribed=*/false,
                           static_cast<std::uint32_t>(rng.below(100)), p);
    ASSERT_GE(td, 1u) << "ts=" << ts << " res=" << resident << "/" << capacity;
    ASSERT_LE(td, static_cast<std::uint64_t>(ts) + 1)
        << "ts=" << ts << " res=" << resident << "/" << capacity;
  }
}

// Degenerate devices: an empty device is first-touch (td = 1); zero capacity
// never divides by zero.
TEST(PolicyProperties, AdaptiveThresholdDegenerateDevices) {
  for (const std::uint32_t ts : kThresholds) {
    EXPECT_EQ(adaptive_threshold(ts, 0, 1u << 14, false, 0, 8), 1u);
    EXPECT_EQ(adaptive_threshold(ts, 0, 0, false, 0, 8), 1u);
  }
}

// Once oversubscribed the threshold is exactly ts * (r + 1) * p.
TEST(PolicyProperties, AdaptiveThresholdOversubscribedExact) {
  Rng rng(0xbead2);
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t ts = kThresholds[rng.below(std::size(kThresholds))];
    const std::uint64_t p = kPenalties[rng.below(std::size(kPenalties))];
    const auto r = static_cast<std::uint32_t>(rng.below(1000));
    const std::uint64_t td = adaptive_threshold(ts, rng.below(1u << 20), rng.below(1u << 20),
                                                /*oversubscribed=*/true, r, p);
    ASSERT_EQ(td, static_cast<std::uint64_t>(ts) * (r + 1) * p);
  }
}

// The threshold is monotone in the round-trip count r (oversubscribed
// branch) and in device occupancy (non-oversubscribed branch): more
// thrashing or a fuller device never makes migration EASIER.
TEST(PolicyProperties, AdaptiveThresholdMonotoneInRoundTrips) {
  Rng rng(0xbead3);
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t ts = kThresholds[rng.below(std::size(kThresholds))];
    const std::uint64_t p = kPenalties[rng.below(std::size(kPenalties))];
    auto r1 = static_cast<std::uint32_t>(rng.below(1000));
    auto r2 = static_cast<std::uint32_t>(rng.below(1000));
    if (r1 > r2) std::swap(r1, r2);
    ASSERT_LE(adaptive_threshold(ts, 0, 0, true, r1, p),
              adaptive_threshold(ts, 0, 0, true, r2, p));
  }
}

TEST(PolicyProperties, AdaptiveThresholdMonotoneInOccupancy) {
  Rng rng(0xbead4);
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t ts = kThresholds[rng.below(std::size(kThresholds))];
    const std::uint64_t capacity = rng.between(1, 1u << 20);
    std::uint64_t a = rng.below(capacity + 1);
    std::uint64_t b = rng.below(capacity + 1);
    if (a > b) std::swap(a, b);
    ASSERT_LE(adaptive_threshold(ts, a, capacity, false, 0, 1),
              adaptive_threshold(ts, b, capacity, false, 0, 1));
  }
}

// decide() is consistent with effective_threshold(): for reads, migrate
// exactly when post_count >= td. Checked across all three policy classes.
TEST(PolicyProperties, DecisionMatchesEffectiveThreshold) {
  Rng rng(0xbead5);
  PolicyConfig pc;
  for (int i = 0; i < 20000; ++i) {
    pc.policy = static_cast<PolicyKind>(rng.below(4));
    pc.static_threshold = kThresholds[rng.below(std::size(kThresholds))];
    pc.migration_penalty = kPenalties[rng.below(std::size(kPenalties))];
    pc.write_triggers_migration = rng.chance(0.5);
    pc.adaptive_write_migrates = rng.chance(0.5);
    const auto policy = make_policy(pc);

    PolicyFeatures f;
    f.type = AccessType::kRead;
    f.capacity_pages = rng.between(1, 1u << 16);
    f.resident_pages = rng.below(f.capacity_pages + 1);
    f.oversubscribed = rng.chance(0.5);
    f.overcommitted = rng.chance(0.5);
    // post_count >= 1 always holds in the driver: the snapshot is taken
    // after the access that triggered the consultation was counted.
    f.post_count = static_cast<std::uint32_t>(rng.between(1, 100));
    f.round_trips = static_cast<std::uint32_t>(rng.below(20));

    const std::uint64_t td = policy->effective_threshold(f);
    const MigrationDecision d = policy->decide(f);
    ASSERT_EQ(d == MigrationDecision::kMigrate, f.post_count >= td)
        << policy->name() << " post=" << f.post_count << " td=" << td;
  }
}

// Migration decisions are monotone in the access count: once a block is hot
// enough to migrate, more accesses never flip it back to remote (all other
// inputs held fixed).
TEST(PolicyProperties, DecisionMonotoneInPostCount) {
  Rng rng(0xbead6);
  PolicyConfig pc;
  for (int i = 0; i < 10000; ++i) {
    pc.policy = static_cast<PolicyKind>(rng.below(4));
    pc.static_threshold = kThresholds[rng.below(std::size(kThresholds))];
    pc.migration_penalty = kPenalties[rng.below(std::size(kPenalties))];
    const auto policy = make_policy(pc);

    PolicyFeatures lo;
    lo.type = AccessType::kRead;
    lo.capacity_pages = rng.between(1, 1u << 16);
    lo.resident_pages = rng.below(lo.capacity_pages + 1);
    lo.oversubscribed = rng.chance(0.5);
    lo.overcommitted = rng.chance(0.5);
    lo.round_trips = static_cast<std::uint32_t>(rng.below(20));
    lo.post_count = static_cast<std::uint32_t>(rng.below(100));
    PolicyFeatures hi = lo;
    hi.post_count = lo.post_count + static_cast<std::uint32_t>(rng.below(100));
    if (policy->decide(lo) == MigrationDecision::kMigrate) {
      ASSERT_EQ(policy->decide(hi), MigrationDecision::kMigrate)
          << policy->name() << " regressed from migrate at post=" << lo.post_count
          << " to remote at post=" << hi.post_count;
    }
  }
}

// Volta write semantics: when write_triggers_migration is set, a write to a
// host-resident block migrates regardless of every other input ("Always" /
// "Oversub" schemes; the oversub gate makes it first-touch anyway before the
// device fills).
TEST(PolicyProperties, StaticWriteAlwaysMigrates) {
  Rng rng(0xbead7);
  for (int i = 0; i < 10000; ++i) {
    StaticThresholdPolicy policy(kThresholds[rng.below(std::size(kThresholds))],
                                 /*write_migrates=*/true, rng.chance(0.5));
    PolicyFeatures f;  // post_count 0: frequency alone would say remote
    f.type = AccessType::kWrite;
    f.capacity_pages = rng.between(1, 1u << 16);
    f.resident_pages = rng.below(f.capacity_pages + 1);
    f.oversubscribed = rng.chance(0.5);
    ASSERT_EQ(policy.decide(f), MigrationDecision::kMigrate);
  }
}

// The oversub-gated static scheme is exactly first-touch until the device
// first fills.
TEST(PolicyProperties, OversubGateIsFirstTouchBeforeFull) {
  Rng rng(0xbead8);
  for (int i = 0; i < 10000; ++i) {
    StaticThresholdPolicy policy(kThresholds[rng.below(std::size(kThresholds))],
                                 rng.chance(0.5), /*gate_on_oversub=*/true);
    PolicyFeatures f;
    f.capacity_pages = rng.between(1, 1u << 16);
    f.resident_pages = rng.below(f.capacity_pages + 1);
    f.oversubscribed = false;
    f.post_count = static_cast<std::uint32_t>(rng.below(100));
    f.type = rng.chance(0.5) ? AccessType::kWrite : AccessType::kRead;
    ASSERT_EQ(policy.decide(f), MigrationDecision::kMigrate);
  }
}

}  // namespace
}  // namespace uvmsim
