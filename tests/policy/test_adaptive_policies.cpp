// Property tests for the online-adaptive policies: the hill-climbing tuner
// stays inside its bounds and converges on stationary streams; the learned
// table quantizes features into valid cells and is deterministic under a
// fixed seed.
#include "policy/adaptive_policies.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace uvmsim {
namespace {

PolicyFeatures oversub_feat(AccessType type, std::uint32_t post, std::uint32_t trips,
                            std::uint64_t resident, std::uint64_t capacity,
                            std::uint32_t window_faults = 0) {
  PolicyFeatures f;
  f.type = type;
  f.post_count = post;
  f.round_trips = trips;
  f.resident_pages = resident;
  f.capacity_pages = capacity;
  f.oversubscribed = true;
  f.overcommitted = true;
  f.window_faults = window_faults;
  return f;
}

TEST(TunedThreshold, FirstTouchUntilOversubscribed) {
  TunedThresholdPolicy p(8, false);
  PolicyFeatures f;
  f.post_count = 1;
  EXPECT_EQ(p.decide(f), MigrationDecision::kMigrate);
  EXPECT_EQ(p.effective_threshold(f), 1u);
}

// The tuned threshold never leaves [1, 8*ts_base] no matter how adversarial
// the consultation stream is.
TEST(TunedThreshold, ThresholdStaysInBounds) {
  TunedThresholdPolicy p(8, false);
  Rng rng(0x7ead1);
  for (int i = 0; i < 200000; ++i) {
    PolicyFeatures f = oversub_feat(rng.chance(0.3) ? AccessType::kWrite : AccessType::kRead,
                                    static_cast<std::uint32_t>(rng.below(200)),
                                    static_cast<std::uint32_t>(rng.below(16)), 900, 1000);
    f.total_evictions = static_cast<std::uint64_t>(i) * rng.below(4);
    (void)p.decide(f);
    ASSERT_GE(p.current_threshold(), 1u);
    ASSERT_LE(p.current_threshold(), 64u);  // 8 * ts_base
  }
}

// On a stationary stream whose cost profile favors one direction, the tuner
// settles: after a burn-in period the threshold stops leaving a small band
// instead of oscillating across the whole range.
TEST(TunedThreshold, ConvergesOnStationaryStream) {
  TunedThresholdPolicy p(8, false);
  // Stationary regime: every consultation sees the same features; post_count
  // 4 with zero evictions means "migrate" costs kMigrateCost per event while
  // thresholds above 4 cost only kRemoteCost — climbing up is strictly
  // better, so the tuner should pin at the top and stay.
  const PolicyFeatures f = oversub_feat(AccessType::kRead, 4, 0, 1000, 1000);
  for (int i = 0; i < 256 * 64; ++i) (void)p.decide(f);
  std::uint32_t lo = p.current_threshold();
  std::uint32_t hi = lo;
  for (int i = 0; i < 256 * 32; ++i) {
    (void)p.decide(f);
    lo = std::min(lo, p.current_threshold());
    hi = std::max(hi, p.current_threshold());
  }
  // Converged: post-burn-in the threshold keeps every decision remote (above
  // post_count 4) and wobbles at most one hill-climb neighborhood.
  EXPECT_GT(lo, 4u);
  EXPECT_LE(hi - lo, 32u) << "tuner still oscillating: [" << lo << ", " << hi << "]";
}

// Identical consultation sequences produce identical decision sequences and
// identical final thresholds — no hidden nondeterminism.
TEST(TunedThreshold, DeterministicUnderFixedSeed) {
  TunedThresholdPolicy a(8, false);
  TunedThresholdPolicy b(8, false);
  Rng ra(0x7ead2);
  Rng rb(0x7ead2);
  for (int i = 0; i < 50000; ++i) {
    const PolicyFeatures fa =
        oversub_feat(AccessType::kRead, static_cast<std::uint32_t>(ra.below(100)),
                     static_cast<std::uint32_t>(ra.below(8)), 800, 1000);
    const PolicyFeatures fb =
        oversub_feat(AccessType::kRead, static_cast<std::uint32_t>(rb.below(100)),
                     static_cast<std::uint32_t>(rb.below(8)), 800, 1000);
    ASSERT_EQ(a.decide(fa), b.decide(fb));
  }
  EXPECT_EQ(a.current_threshold(), b.current_threshold());
}

TEST(LearnedTable, CellIndexStaysInRange) {
  Rng rng(0x1ea51);
  for (int i = 0; i < 100000; ++i) {
    PolicyFeatures f;
    f.round_trips = static_cast<std::uint32_t>(rng.below(1000));
    f.capacity_pages = rng.between(1, 1u << 16);
    f.resident_pages = rng.below(f.capacity_pages + 2);  // may exceed capacity
    f.window_faults = static_cast<std::uint32_t>(rng.below(500));
    f.prev_window_faults = static_cast<std::uint32_t>(rng.below(500));
    ASSERT_LT(LearnedTablePolicy::cell_index(f), LearnedTablePolicy::kCells);
  }
  PolicyFeatures zero;  // capacity 0 must not divide by zero
  EXPECT_LT(LearnedTablePolicy::cell_index(zero), LearnedTablePolicy::kCells);
}

TEST(LearnedTable, CellIndexSeparatesRegimes) {
  PolicyFeatures cold;
  cold.round_trips = 0;
  cold.resident_pages = 0;
  cold.capacity_pages = 1000;
  PolicyFeatures hot;
  hot.round_trips = 7;
  hot.resident_pages = 1000;
  hot.capacity_pages = 1000;
  hot.window_faults = 100;
  EXPECT_NE(LearnedTablePolicy::cell_index(cold), LearnedTablePolicy::cell_index(hot));
}

TEST(LearnedTable, UnseenBucketsUseBaseThreshold) {
  LearnedTablePolicy p(8, 8, false);
  const PolicyFeatures f = oversub_feat(AccessType::kRead, 0, 0, 500, 1000);
  EXPECT_EQ(p.effective_threshold(f), 8u);
}

// Re-migrations of previously evicted blocks harden the bucket's threshold;
// clean first migrations keep it near ts.
TEST(LearnedTable, ThrashHardensBucketThreshold) {
  LearnedTablePolicy p(8, 8, false);
  // Drive one bucket (round_trips>=7, full device, high rate) with thrashing
  // migrations: post_count far above any threshold, round trips high.
  const PolicyFeatures thrash = oversub_feat(AccessType::kRead, 1000000, 7, 1000, 1000, 100);
  const std::uint64_t before = p.effective_threshold(thrash);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(p.decide(thrash), MigrationDecision::kMigrate);
  const std::uint64_t after = p.effective_threshold(thrash);
  EXPECT_GT(after, before);
  // An untouched bucket is unaffected (per-regime learning).
  const PolicyFeatures cold = oversub_feat(AccessType::kRead, 0, 0, 100, 1000);
  EXPECT_EQ(p.effective_threshold(cold), 8u);
}

TEST(LearnedTable, DeterministicUnderFixedSeed) {
  LearnedTablePolicy a(8, 8, false);
  LearnedTablePolicy b(8, 8, false);
  Rng ra(0x1ea52);
  Rng rb(0x1ea52);
  std::vector<MigrationDecision> da;
  std::vector<MigrationDecision> db;
  for (int i = 0; i < 50000; ++i) {
    const PolicyFeatures fa = oversub_feat(
        ra.chance(0.25) ? AccessType::kWrite : AccessType::kRead,
        static_cast<std::uint32_t>(ra.below(300)), static_cast<std::uint32_t>(ra.below(12)),
        ra.below(1001), 1000, static_cast<std::uint32_t>(ra.below(200)));
    const PolicyFeatures fb = oversub_feat(
        rb.chance(0.25) ? AccessType::kWrite : AccessType::kRead,
        static_cast<std::uint32_t>(rb.below(300)), static_cast<std::uint32_t>(rb.below(12)),
        rb.below(1001), 1000, static_cast<std::uint32_t>(rb.below(200)));
    da.push_back(a.decide(fa));
    db.push_back(b.decide(fb));
  }
  EXPECT_EQ(da, db);
}

}  // namespace
}  // namespace uvmsim
