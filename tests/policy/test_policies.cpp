#include <gtest/gtest.h>

#include "policy/migration_policy.hpp"

namespace uvmsim {
namespace {

const PolicyContext kEmpty{0, 1000, false, false};
const PolicyContext kOversub{1000, 1000, true, true};

TEST(FirstTouch, AlwaysMigrates) {
  FirstTouchPolicy p;
  EXPECT_EQ(p.decide(AccessType::kRead, {1, 0}, kEmpty), MigrationDecision::kMigrate);
  EXPECT_EQ(p.decide(AccessType::kWrite, {1, 0}, kOversub), MigrationDecision::kMigrate);
  EXPECT_EQ(p.effective_threshold({1, 0}, kEmpty), 1u);
  EXPECT_EQ(p.name(), "first-touch");
}

TEST(StaticAlways, ReadsBelowThresholdStayRemote) {
  StaticThresholdPolicy p(8, true, false);
  EXPECT_EQ(p.decide(AccessType::kRead, {7, 0}, kEmpty), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(AccessType::kRead, {8, 0}, kEmpty), MigrationDecision::kMigrate);
  EXPECT_EQ(p.decide(AccessType::kRead, {9, 0}, kEmpty), MigrationDecision::kMigrate);
}

TEST(StaticAlways, WritesMigrateImmediately) {
  StaticThresholdPolicy p(8, true, false);
  EXPECT_EQ(p.decide(AccessType::kWrite, {1, 0}, kEmpty), MigrationDecision::kMigrate);
}

TEST(StaticAlways, WriteMigrationCanBeDisabled) {
  StaticThresholdPolicy p(8, false, false);
  EXPECT_EQ(p.decide(AccessType::kWrite, {1, 0}, kEmpty), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(AccessType::kWrite, {8, 0}, kEmpty), MigrationDecision::kMigrate);
}

TEST(StaticAlways, ActiveRegardlessOfOversubscription) {
  StaticThresholdPolicy p(8, true, false);
  EXPECT_EQ(p.decide(AccessType::kRead, {1, 0}, kEmpty), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(AccessType::kRead, {1, 0}, kOversub), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.effective_threshold({1, 0}, kEmpty), 8u);
}

TEST(StaticOversub, FirstTouchUntilOversubscription) {
  StaticThresholdPolicy p(8, true, true);
  EXPECT_EQ(p.decide(AccessType::kRead, {1, 0}, kEmpty), MigrationDecision::kMigrate);
  EXPECT_EQ(p.effective_threshold({1, 0}, kEmpty), 1u);
  EXPECT_EQ(p.decide(AccessType::kRead, {1, 0}, kOversub), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(AccessType::kRead, {8, 0}, kOversub), MigrationDecision::kMigrate);
  EXPECT_EQ(p.effective_threshold({1, 0}, kOversub), 8u);
}

TEST(Adaptive, FirstTouchOnEmptyDevice) {
  AdaptivePolicy p(8, 8, false);
  EXPECT_EQ(p.decide(AccessType::kRead, {1, 0}, kEmpty), MigrationDecision::kMigrate);
}

TEST(Adaptive, DelayedNearCapacity) {
  AdaptivePolicy p(8, 8, false);
  const PolicyContext nearly{999, 1000, false, false};
  EXPECT_EQ(p.effective_threshold({0, 0}, nearly), 8u);
  EXPECT_EQ(p.decide(AccessType::kRead, {7, 0}, nearly), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(AccessType::kRead, {8, 0}, nearly), MigrationDecision::kMigrate);
}

TEST(Adaptive, OversubUsesRoundTrips) {
  AdaptivePolicy p(8, 8, false);
  // r=0: td = 64. r=1: td = 128.
  EXPECT_EQ(p.decide(AccessType::kRead, {63, 0}, kOversub), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(AccessType::kRead, {64, 0}, kOversub), MigrationDecision::kMigrate);
  EXPECT_EQ(p.decide(AccessType::kRead, {64, 1}, kOversub), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(AccessType::kRead, {128, 1}, kOversub), MigrationDecision::kMigrate);
}

TEST(Adaptive, WritesFollowDynamicThresholdByDefault) {
  // The adaptive scheme subsumes writes so highly-thrashed write pages can
  // stay host-pinned (zero-copy writes).
  AdaptivePolicy p(8, 8, false);
  EXPECT_EQ(p.decide(AccessType::kWrite, {1, 0}, kOversub), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(AccessType::kWrite, {64, 0}, kOversub), MigrationDecision::kMigrate);
}

TEST(Adaptive, VoltaWriteSemanticsOptIn) {
  AdaptivePolicy p(8, 8, true);
  EXPECT_EQ(p.decide(AccessType::kWrite, {1, 0}, kOversub), MigrationDecision::kMigrate);
}

TEST(Adaptive, BranchSelectsOnOvercommitmentNotEviction) {
  // The Adaptive branch is chosen by footprint-vs-capacity (known to the
  // driver at allocation time), not by the first-eviction event that gates
  // the Oversub static scheme.
  AdaptivePolicy p(8, 8, false);
  const PolicyContext overcommitted_only{0, 1000, false, true};
  EXPECT_EQ(p.effective_threshold({0, 0}, overcommitted_only), 64u);
  const PolicyContext evicted_but_fitting{1000, 1000, true, false};
  EXPECT_EQ(p.effective_threshold({0, 0}, evicted_but_fitting), 9u);
}

TEST(Adaptive, HugePenaltyPinsEverything) {
  AdaptivePolicy p(8, 1048576, false);
  EXPECT_EQ(p.decide(AccessType::kRead, {1000000, 0}, kOversub),
            MigrationDecision::kRemoteAccess);
}

TEST(Factory, BuildsEachKind) {
  PolicyConfig cfg;
  cfg.policy = PolicyKind::kFirstTouch;
  EXPECT_EQ(make_policy(cfg)->name(), "first-touch");
  cfg.policy = PolicyKind::kStaticAlways;
  EXPECT_EQ(make_policy(cfg)->name(), "static-always");
  cfg.policy = PolicyKind::kStaticOversub;
  EXPECT_EQ(make_policy(cfg)->name(), "static-oversub");
  cfg.policy = PolicyKind::kAdaptive;
  EXPECT_EQ(make_policy(cfg)->name(), "adaptive");
}

TEST(Factory, ForwardsParameters) {
  PolicyConfig cfg;
  cfg.policy = PolicyKind::kStaticAlways;
  cfg.static_threshold = 16;
  auto p = make_policy(cfg);
  EXPECT_EQ(p->decide(AccessType::kRead, {15, 0}, kEmpty), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p->decide(AccessType::kRead, {16, 0}, kEmpty), MigrationDecision::kMigrate);
}

}  // namespace
}  // namespace uvmsim
