#include <gtest/gtest.h>

#include "policy/migration_policy.hpp"

namespace uvmsim {
namespace {

/// Build the feature snapshot a consultation would see.
PolicyFeatures feat(AccessType type, std::uint32_t post, std::uint32_t trips,
                    std::uint64_t resident, std::uint64_t capacity, bool oversub,
                    bool overcommit) {
  PolicyFeatures f;
  f.type = type;
  f.post_count = post;
  f.round_trips = trips;
  f.resident_pages = resident;
  f.capacity_pages = capacity;
  f.oversubscribed = oversub;
  f.overcommitted = overcommit;
  return f;
}

PolicyFeatures empty(AccessType type, std::uint32_t post, std::uint32_t trips = 0) {
  return feat(type, post, trips, 0, 1000, false, false);
}

PolicyFeatures oversub(AccessType type, std::uint32_t post, std::uint32_t trips = 0) {
  return feat(type, post, trips, 1000, 1000, true, true);
}

TEST(FirstTouch, AlwaysMigrates) {
  FirstTouchPolicy p;
  EXPECT_EQ(p.decide(empty(AccessType::kRead, 1)), MigrationDecision::kMigrate);
  EXPECT_EQ(p.decide(oversub(AccessType::kWrite, 1)), MigrationDecision::kMigrate);
  EXPECT_EQ(p.effective_threshold(empty(AccessType::kRead, 1)), 1u);
  EXPECT_TRUE(p.read_would_migrate(empty(AccessType::kRead, 1)));
  EXPECT_EQ(p.name(), "baseline");
}

TEST(StaticAlways, ReadsBelowThresholdStayRemote) {
  StaticThresholdPolicy p(8, true, false);
  EXPECT_EQ(p.decide(empty(AccessType::kRead, 7)), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(empty(AccessType::kRead, 8)), MigrationDecision::kMigrate);
  EXPECT_EQ(p.decide(empty(AccessType::kRead, 9)), MigrationDecision::kMigrate);
  EXPECT_EQ(p.name(), "always");
}

TEST(StaticAlways, WritesMigrateImmediately) {
  StaticThresholdPolicy p(8, true, false);
  EXPECT_EQ(p.decide(empty(AccessType::kWrite, 1)), MigrationDecision::kMigrate);
  EXPECT_FALSE(p.read_would_migrate(empty(AccessType::kWrite, 1)));
}

TEST(StaticAlways, WriteMigrationCanBeDisabled) {
  StaticThresholdPolicy p(8, false, false);
  EXPECT_EQ(p.decide(empty(AccessType::kWrite, 1)), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(empty(AccessType::kWrite, 8)), MigrationDecision::kMigrate);
}

TEST(StaticAlways, ActiveRegardlessOfOversubscription) {
  StaticThresholdPolicy p(8, true, false);
  EXPECT_EQ(p.decide(empty(AccessType::kRead, 1)), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(oversub(AccessType::kRead, 1)), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.effective_threshold(empty(AccessType::kRead, 1)), 8u);
}

TEST(StaticOversub, FirstTouchUntilOversubscription) {
  StaticThresholdPolicy p(8, true, true);
  EXPECT_EQ(p.decide(empty(AccessType::kRead, 1)), MigrationDecision::kMigrate);
  EXPECT_EQ(p.effective_threshold(empty(AccessType::kRead, 1)), 1u);
  EXPECT_TRUE(p.read_would_migrate(empty(AccessType::kRead, 1)));
  EXPECT_EQ(p.decide(oversub(AccessType::kRead, 1)), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(oversub(AccessType::kRead, 8)), MigrationDecision::kMigrate);
  EXPECT_EQ(p.effective_threshold(oversub(AccessType::kRead, 1)), 8u);
  EXPECT_EQ(p.name(), "oversub");
}

TEST(Adaptive, FirstTouchOnEmptyDevice) {
  AdaptivePolicy p(8, 8, false);
  EXPECT_EQ(p.decide(empty(AccessType::kRead, 1)), MigrationDecision::kMigrate);
}

TEST(Adaptive, DelayedNearCapacity) {
  AdaptivePolicy p(8, 8, false);
  const PolicyFeatures nearly7 = feat(AccessType::kRead, 7, 0, 999, 1000, false, false);
  const PolicyFeatures nearly8 = feat(AccessType::kRead, 8, 0, 999, 1000, false, false);
  EXPECT_EQ(p.effective_threshold(nearly7), 8u);
  EXPECT_EQ(p.decide(nearly7), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(nearly8), MigrationDecision::kMigrate);
}

TEST(Adaptive, OversubUsesRoundTrips) {
  AdaptivePolicy p(8, 8, false);
  // r=0: td = 64. r=1: td = 128.
  EXPECT_EQ(p.decide(oversub(AccessType::kRead, 63, 0)), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(oversub(AccessType::kRead, 64, 0)), MigrationDecision::kMigrate);
  EXPECT_EQ(p.decide(oversub(AccessType::kRead, 64, 1)), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(oversub(AccessType::kRead, 128, 1)), MigrationDecision::kMigrate);
}

TEST(Adaptive, WritesFollowDynamicThresholdByDefault) {
  // The adaptive scheme subsumes writes so highly-thrashed write pages can
  // stay host-pinned (zero-copy writes).
  AdaptivePolicy p(8, 8, false);
  EXPECT_EQ(p.decide(oversub(AccessType::kWrite, 1)), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p.decide(oversub(AccessType::kWrite, 64)), MigrationDecision::kMigrate);
}

TEST(Adaptive, VoltaWriteSemanticsOptIn) {
  AdaptivePolicy p(8, 8, true);
  EXPECT_EQ(p.decide(oversub(AccessType::kWrite, 1)), MigrationDecision::kMigrate);
}

TEST(Adaptive, BranchSelectsOnOvercommitmentNotEviction) {
  // The Adaptive branch is chosen by footprint-vs-capacity (known to the
  // driver at allocation time), not by the first-eviction event that gates
  // the Oversub static scheme.
  AdaptivePolicy p(8, 8, false);
  const PolicyFeatures overcommitted_only = feat(AccessType::kRead, 0, 0, 0, 1000, false, true);
  EXPECT_EQ(p.effective_threshold(overcommitted_only), 64u);
  const PolicyFeatures evicted_but_fitting =
      feat(AccessType::kRead, 0, 0, 1000, 1000, true, false);
  EXPECT_EQ(p.effective_threshold(evicted_but_fitting), 9u);
}

TEST(Adaptive, HugePenaltyPinsEverything) {
  AdaptivePolicy p(8, 1048576, false);
  EXPECT_EQ(p.decide(oversub(AccessType::kRead, 1000000)), MigrationDecision::kRemoteAccess);
}

TEST(Factory, BuildsEachKind) {
  PolicyConfig cfg;
  cfg.policy = PolicyKind::kFirstTouch;
  EXPECT_EQ(make_policy(cfg)->name(), "baseline");
  cfg.policy = PolicyKind::kStaticAlways;
  EXPECT_EQ(make_policy(cfg)->name(), "always");
  cfg.policy = PolicyKind::kStaticOversub;
  EXPECT_EQ(make_policy(cfg)->name(), "oversub");
  cfg.policy = PolicyKind::kAdaptive;
  EXPECT_EQ(make_policy(cfg)->name(), "adaptive");
}

TEST(Factory, ForwardsParameters) {
  PolicyConfig cfg;
  cfg.policy = PolicyKind::kStaticAlways;
  cfg.static_threshold = 16;
  auto p = make_policy(cfg);
  EXPECT_EQ(p->decide(empty(AccessType::kRead, 15)), MigrationDecision::kRemoteAccess);
  EXPECT_EQ(p->decide(empty(AccessType::kRead, 16)), MigrationDecision::kMigrate);
}

TEST(Features, DerivedRatiosAndRates) {
  PolicyFeatures f;
  f.resident_pages = 250;
  f.capacity_pages = 1000;
  EXPECT_DOUBLE_EQ(f.occupancy(), 0.25);
  f.capacity_pages = 0;
  EXPECT_DOUBLE_EQ(f.occupancy(), 0.0);
  f.window_faults = 5;
  f.prev_window_faults = 7;
  EXPECT_EQ(f.fault_arrival_rate(), 12u);
  f.window_evictions = 2;
  f.prev_window_evictions = 3;
  EXPECT_EQ(f.eviction_pressure(), 5u);
}

}  // namespace
}  // namespace uvmsim
