// Unit tests of Equation 1 (the paper's dynamic threshold).
#include <gtest/gtest.h>

#include "policy/migration_policy.hpp"

namespace uvmsim {
namespace {

TEST(AdaptiveThreshold, EmptyDeviceIsFirstTouch) {
  // td = ts * 0/total + 1 = 1.
  EXPECT_EQ(adaptive_threshold(8, 0, 1000, false, 0, 8), 1u);
}

TEST(AdaptiveThreshold, PaperExampleBelowOneEighth) {
  // ts = 8: below 12.5 % occupancy, td = 1 (every first touch migrates).
  EXPECT_EQ(adaptive_threshold(8, 124, 1000, false, 0, 8), 1u);
  EXPECT_EQ(adaptive_threshold(8, 125, 1000, false, 0, 8), 2u);
}

TEST(AdaptiveThreshold, ApproachesStaticThresholdNearCapacity) {
  // Just before full capacity, td = ts (paper's walkthrough: 8).
  EXPECT_EQ(adaptive_threshold(8, 999, 1000, false, 0, 8), 8u);
  EXPECT_EQ(adaptive_threshold(8, 1000, 1000, false, 0, 8), 9u);
}

TEST(AdaptiveThreshold, GrowsMonotonicallyWithOccupancy) {
  std::uint64_t prev = 0;
  for (std::uint64_t used = 0; used <= 1000; used += 50) {
    const auto td = adaptive_threshold(8, used, 1000, false, 0, 8);
    EXPECT_GE(td, prev);
    prev = td;
  }
}

TEST(AdaptiveThreshold, OversubscribedBase) {
  // td = ts * (r+1) * p: with ts=8, p=2, r=0 -> 16 (paper's example).
  EXPECT_EQ(adaptive_threshold(8, 0, 1000, true, 0, 2), 16u);
}

TEST(AdaptiveThreshold, PaperRoundTripExample) {
  // "if a given chunk of memory is evicted twice, then the dynamic threshold
  //  of migration for that memory chunk will be derived as 48" (ts=8, p=2).
  EXPECT_EQ(adaptive_threshold(8, 0, 1000, true, 2, 2), 48u);
}

TEST(AdaptiveThreshold, PenaltyScalesLinearly) {
  EXPECT_EQ(adaptive_threshold(8, 0, 0, true, 0, 8), 64u);
  EXPECT_EQ(adaptive_threshold(8, 0, 0, true, 0, 1048576), 8u * 1048576);
}

TEST(AdaptiveThreshold, RoundTripsHardenPinning) {
  std::uint64_t prev = 0;
  for (std::uint32_t r = 0; r < 10; ++r) {
    const auto td = adaptive_threshold(8, 0, 0, true, r, 8);
    EXPECT_GT(td, prev);
    prev = td;
  }
}

TEST(AdaptiveThreshold, OccupancyIrrelevantOnceOversubscribed) {
  EXPECT_EQ(adaptive_threshold(8, 0, 1000, true, 1, 4),
            adaptive_threshold(8, 1000, 1000, true, 1, 4));
}

TEST(AdaptiveThreshold, ZeroCapacityGuard) {
  EXPECT_EQ(adaptive_threshold(8, 0, 0, false, 0, 8), 1u);
}

// Property sweep over ts values used in Fig 4.
class ThresholdSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ThresholdSweep, NoOversubBoundsAreOneToTsPlusOne) {
  const std::uint32_t ts = GetParam();
  for (std::uint64_t used = 0; used <= 2048; used += 64) {
    const auto td = adaptive_threshold(ts, used, 2048, false, 0, 8);
    EXPECT_GE(td, 1u);
    EXPECT_LE(td, static_cast<std::uint64_t>(ts) + 1);
  }
}

TEST_P(ThresholdSweep, OversubThresholdIsMultipleOfTs) {
  const std::uint32_t ts = GetParam();
  for (std::uint32_t r = 0; r < 8; ++r) {
    const auto td = adaptive_threshold(ts, 0, 0, true, r, 4);
    EXPECT_EQ(td % ts, 0u);
    EXPECT_EQ(td, static_cast<std::uint64_t>(ts) * (r + 1) * 4);
  }
}

INSTANTIATE_TEST_SUITE_P(TsValues, ThresholdSweep, ::testing::Values(8u, 16u, 32u));

}  // namespace
}  // namespace uvmsim
