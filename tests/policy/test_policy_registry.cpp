// Registry round-trip tests: every registered slug constructs a policy whose
// name() matches, user-supplied names resolve through apply_policy_name with
// paper-enum compatibility, and unknown slugs fail loudly.
#include "policy/policy_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/config_parse.hpp"

namespace uvmsim {
namespace {

TEST(PolicyRegistry, EverySlugConstructsAndNameMatches) {
  const std::vector<std::string> slugs = PolicyRegistry::instance().slugs();
  ASSERT_GE(slugs.size(), 6u);  // 4 paper schemes + tuned + learned
  PolicyConfig cfg;
  for (const std::string& slug : slugs) {
    ASSERT_TRUE(apply_policy_name(cfg, slug)) << slug;
    const std::unique_ptr<MigrationPolicy> p = PolicyRegistry::instance().make(cfg);
    ASSERT_NE(p, nullptr) << slug;
    EXPECT_EQ(p->name(), slug);
    EXPECT_EQ(cfg.resolved_slug(), slug);
  }
}

TEST(PolicyRegistry, SlugsAreSortedAndUnique) {
  const std::vector<std::string> slugs = PolicyRegistry::instance().slugs();
  EXPECT_TRUE(std::is_sorted(slugs.begin(), slugs.end()));
  EXPECT_EQ(std::adjacent_find(slugs.begin(), slugs.end()), slugs.end());
}

TEST(PolicyRegistry, PaperNamesResolveToEnumAndClearSlug) {
  PolicyConfig cfg;
  cfg.slug = "learned";  // must be cleared by a paper-name hit
  ASSERT_TRUE(apply_policy_name(cfg, "adaptive"));
  EXPECT_EQ(cfg.policy, PolicyKind::kAdaptive);
  EXPECT_TRUE(cfg.slug.empty());
  ASSERT_TRUE(apply_policy_name(cfg, "baseline"));
  EXPECT_EQ(cfg.policy, PolicyKind::kFirstTouch);
  ASSERT_TRUE(apply_policy_name(cfg, "always"));
  EXPECT_EQ(cfg.policy, PolicyKind::kStaticAlways);
  ASSERT_TRUE(apply_policy_name(cfg, "oversub"));
  EXPECT_EQ(cfg.policy, PolicyKind::kStaticOversub);
}

TEST(PolicyRegistry, HistoricalAliasesStillResolve) {
  PolicyConfig cfg;
  ASSERT_TRUE(apply_policy_name(cfg, "first-touch"));
  EXPECT_EQ(cfg.policy, PolicyKind::kFirstTouch);
  ASSERT_TRUE(apply_policy_name(cfg, "disabled"));
  EXPECT_EQ(cfg.policy, PolicyKind::kFirstTouch);
  ASSERT_TRUE(apply_policy_name(cfg, "ADAPTIVE"));  // case-insensitive
  EXPECT_EQ(cfg.policy, PolicyKind::kAdaptive);
}

TEST(PolicyRegistry, RegistrySlugsSetSlugField) {
  PolicyConfig cfg;
  ASSERT_TRUE(apply_policy_name(cfg, "tuned"));
  EXPECT_EQ(cfg.slug, "tuned");
  EXPECT_EQ(cfg.resolved_slug(), "tuned");
  ASSERT_TRUE(apply_policy_name(cfg, "learned"));
  EXPECT_EQ(cfg.slug, "learned");
}

TEST(PolicyRegistry, UnknownNameLeavesConfigUntouched) {
  PolicyConfig cfg;
  cfg.policy = PolicyKind::kAdaptive;
  EXPECT_FALSE(apply_policy_name(cfg, "no-such-policy"));
  EXPECT_EQ(cfg.policy, PolicyKind::kAdaptive);
  EXPECT_TRUE(cfg.slug.empty());
}

TEST(PolicyRegistry, MakeThrowsListingRegisteredSlugs) {
  PolicyConfig cfg;
  cfg.slug = "no-such-policy";
  try {
    (void)PolicyRegistry::instance().make(cfg);
    FAIL() << "make() accepted an unregistered slug";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-policy"), std::string::npos);
    EXPECT_NE(what.find("adaptive"), std::string::npos);
  }
}

TEST(PolicyRegistry, DuplicateRegistrationThrows) {
  PolicyRegistry registry;
  registry.add({"dup", "first", [](const PolicyConfig&) {
                  return std::make_unique<FirstTouchPolicy>();
                }});
  EXPECT_THROW(registry.add({"dup", "second",
                             [](const PolicyConfig&) {
                               return std::make_unique<FirstTouchPolicy>();
                             }}),
               std::invalid_argument);
  EXPECT_THROW(registry.add({"", "empty slug",
                             [](const PolicyConfig&) {
                               return std::make_unique<FirstTouchPolicy>();
                             }}),
               std::invalid_argument);
}

TEST(PolicyRegistry, RegisteredNamesListsEverySlug) {
  const std::string names = registered_policy_names();
  for (const std::string& slug : PolicyRegistry::instance().slugs()) {
    EXPECT_NE(names.find(slug), std::string::npos) << slug;
  }
}

TEST(PolicyRegistry, HistoricCountersSemantics) {
  PolicyConfig cfg;
  ASSERT_TRUE(apply_policy_name(cfg, "baseline"));
  EXPECT_FALSE(cfg.historic_counters());
  ASSERT_TRUE(apply_policy_name(cfg, "always"));
  EXPECT_FALSE(cfg.historic_counters());
  ASSERT_TRUE(apply_policy_name(cfg, "oversub"));
  EXPECT_TRUE(cfg.historic_counters());
  ASSERT_TRUE(apply_policy_name(cfg, "adaptive"));
  EXPECT_TRUE(cfg.historic_counters());
  // Registry policies default to historic counters (round-trip aware).
  ASSERT_TRUE(apply_policy_name(cfg, "tuned"));
  EXPECT_TRUE(cfg.historic_counters());
  ASSERT_TRUE(apply_policy_name(cfg, "learned"));
  EXPECT_TRUE(cfg.historic_counters());
}

TEST(PolicyRegistry, ConfigStringRoundTripsRegistrySlug) {
  SimConfig cfg;
  ASSERT_TRUE(apply_policy_name(cfg.policy, "learned"));
  const std::string text = to_config_string(cfg);
  EXPECT_NE(text.find("policy = learned"), std::string::npos);
  SimConfig parsed;
  std::istringstream is(text);
  load_config_stream(parsed, is);
  EXPECT_EQ(parsed.policy.resolved_slug(), "learned");
  EXPECT_TRUE(parsed.policy.historic_counters());
}

TEST(PolicyRegistry, ConfigParseRejectsUnknownPolicy) {
  SimConfig cfg;
  try {
    apply_config_setting(cfg, "policy=no-such-policy");
    FAIL() << "parser accepted an unregistered policy";
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-policy"), std::string::npos);
    EXPECT_NE(what.find("adaptive"), std::string::npos);
  }
}

}  // namespace
}  // namespace uvmsim
