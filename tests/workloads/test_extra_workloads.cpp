#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {
namespace {

WorkloadParams tiny() {
  WorkloadParams p;
  p.scale = 0.1;
  return p;
}

TEST(ExtraRegistry, NamesResolve) {
  ASSERT_EQ(extra_workload_names().size(), 4u);
  for (const auto& n : extra_workload_names()) {
    auto wl = make_workload(n, tiny());
    ASSERT_NE(wl, nullptr);
    EXPECT_EQ(wl->name(), n);
  }
}

TEST(ExtraRegistry, Classification) {
  EXPECT_FALSE(make_workload("kmeans", tiny())->irregular());
  EXPECT_FALSE(make_workload("histogram", tiny())->irregular());
  EXPECT_TRUE(make_workload("spmv", tiny())->irregular());
  EXPECT_TRUE(make_workload("pagerank", tiny())->irregular());
}

class ExtraWorkloadShape : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtraWorkloadShape, AccessesStayWithinAllocations) {
  auto wl = make_workload(GetParam(), tiny());
  AddressSpace space;
  wl->build(space);
  std::vector<Access> buf;
  std::uint64_t checked = 0;
  for (const auto& k : wl->schedule()) {
    const std::uint64_t tasks = k->num_tasks();
    for (std::uint64_t t = 0; t < tasks && checked < 100000; t += 1 + tasks / 64) {
      buf.clear();
      k->gen_task(t, buf);
      for (const Access& a : buf) {
        ++checked;
        const auto owner = space.find(a.addr);
        ASSERT_TRUE(owner.has_value()) << GetParam() << " touches unmapped " << a.addr;
        EXPECT_TRUE(space.alloc(*owner).contains(a.addr + a.bytes() - 1));
        EXPECT_EQ(block_of(a.addr), block_of(a.addr + a.bytes() - 1));
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(ExtraWorkloadShape, RunsEndToEndUnderBothExtremes) {
  SimConfig cfg;
  cfg.gpu.num_sms = 8;
  cfg.gpu.warps_per_sm = 2;
  for (const PolicyKind policy : {PolicyKind::kFirstTouch, PolicyKind::kAdaptive}) {
    cfg.policy.policy = policy;
    const RunResult r = run_workload(GetParam(), cfg, 1.25, tiny());
    EXPECT_GT(r.stats.total_accesses, 0u);
    EXPECT_GT(r.stats.kernel_cycles, 0u);
    EXPECT_LE(r.stats.local_accesses + r.stats.remote_accesses, r.stats.total_accesses);
  }
}

INSTANTIATE_TEST_SUITE_P(Extras, ExtraWorkloadShape,
                         ::testing::Values("spmv", "pagerank", "kmeans", "histogram"));

TEST(ExtraCharacterization, SpmvMatrixIsColdReadOnceXIsHot) {
  auto wl = make_workload("spmv", tiny());
  AddressSpace space;
  wl->build(space);
  std::map<std::string, std::uint64_t> acc, pages;
  std::vector<Access> buf;
  for (const auto& k : wl->schedule()) {
    for (std::uint64_t t = 0; t < k->num_tasks(); ++t) {
      buf.clear();
      k->gen_task(t, buf);
      for (const Access& a : buf) {
        const auto id = space.find(a.addr);
        if (!id) continue;
        acc[space.alloc(*id).name] += a.count;
      }
    }
  }
  // The gathered x vector is touched nnz times against its small size;
  // values are streamed once per iteration.
  AddressSpace sizing;
  make_workload("spmv", tiny())->build(sizing);
  double vals_density = 0, x_density = 0;
  for (const Allocation& a : sizing.allocations()) {
    const double density =
        static_cast<double>(acc[a.name]) / static_cast<double>(a.user_size / kPageSize);
    if (a.name == "values") vals_density = density;
    if (a.name == "x") x_density = density;
  }
  EXPECT_GT(x_density, 2.0 * vals_density);
}

TEST(ExtraCharacterization, HistogramBinsAreHotAndWritten) {
  auto wl = make_workload("histogram", tiny());
  AddressSpace space;
  wl->build(space);
  std::uint64_t bin_writes = 0, input_writes = 0;
  std::vector<Access> buf;
  for (const auto& k : wl->schedule()) {
    for (std::uint64_t t = 0; t < k->num_tasks(); ++t) {
      buf.clear();
      k->gen_task(t, buf);
      for (const Access& a : buf) {
        if (a.type != AccessType::kWrite) continue;
        const auto id = space.find(a.addr);
        ASSERT_TRUE(id.has_value());
        if (space.alloc(*id).name == "bins") {
          ++bin_writes;
        } else {
          ++input_writes;
        }
      }
    }
  }
  EXPECT_GT(bin_writes, 0u);
  EXPECT_EQ(input_writes, 0u);  // the input stream is read-only
}

}  // namespace
}  // namespace uvmsim
