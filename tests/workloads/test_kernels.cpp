#include <gtest/gtest.h>

#include <set>

#include "workloads/common.hpp"

namespace uvmsim {
namespace {

TEST(MapKernel, CoversAllLinesExactlyOnce) {
  MapKernel::Options opt;
  opt.count = 8;
  opt.lines_per_task = 16;
  MapKernel k("k", {{0, 100 * 8 * kWarpAccessBytes, AccessType::kRead, 0, 1}}, 100, opt);
  EXPECT_EQ(k.num_tasks(), 7u);  // ceil(100/16)

  std::set<VirtAddr> seen;
  std::vector<Access> buf;
  for (std::uint64_t t = 0; t < k.num_tasks(); ++t) {
    buf.clear();
    k.gen_task(t, buf);
    for (const Access& a : buf) {
      EXPECT_TRUE(seen.insert(a.addr).second);
      EXPECT_EQ(a.count, 8);
      EXPECT_EQ(a.type, AccessType::kRead);
    }
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u * 8 * kWarpAccessBytes);
}

TEST(MapKernel, MultipleOperandsInterleave) {
  MapKernel::Options opt;
  opt.count = 4;
  opt.lines_per_task = 4;
  MapKernel k("k",
              {{0, 1 << 20, AccessType::kRead, 0, 1}, {1 << 20, 1 << 20, AccessType::kWrite, 0, 1}},
              4, opt);
  std::vector<Access> buf;
  k.gen_task(0, buf);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf[0].addr, 0u);
  EXPECT_EQ(buf[1].addr, 1u << 20);
  EXPECT_EQ(buf[1].type, AccessType::kWrite);
  EXPECT_EQ(buf[2].addr, 4u * kWarpAccessBytes);
}

TEST(MapKernel, StrideShiftRevisitsSmallerArray) {
  MapKernel::Options opt;
  opt.count = 8;
  opt.lines_per_task = 8;
  MapKernel k("k", {{0, 1 << 20, AccessType::kRead, 2, 1}}, 8, opt);
  std::vector<Access> buf;
  k.gen_task(0, buf);
  ASSERT_EQ(buf.size(), 8u);
  // Lines 0..3 map to offset 0; lines 4..7 map to the next line.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(buf[static_cast<std::size_t>(i)].addr, 0u);
  for (int i = 4; i < 8; ++i) {
    EXPECT_EQ(buf[static_cast<std::size_t>(i)].addr, 8u * kWarpAccessBytes);
  }
}

TEST(MapKernel, RepeatEmitsStencilReReads) {
  MapKernel::Options opt;
  opt.lines_per_task = 2;
  MapKernel k("k", {{0, 1 << 20, AccessType::kRead, 0, 3}}, 2, opt);
  std::vector<Access> buf;
  k.gen_task(0, buf);
  EXPECT_EQ(buf.size(), 6u);
}

TEST(MapKernel, HotLinesGetExtraAccesses) {
  MapKernel::Options opt;
  opt.lines_per_task = 16;
  opt.hot_line_every = 8;
  opt.hot_extra = 2;
  MapKernel k("k", {{0, 1 << 20, AccessType::kRead, 0, 1}}, 16, opt);
  std::vector<Access> buf;
  k.gen_task(0, buf);
  // Lines 0 and 8 are hot: 3 accesses each; the other 14 lines get 1.
  EXPECT_EQ(buf.size(), 14u + 2u * 3u);
}

TEST(MapKernel, LastTaskIsTruncated) {
  MapKernel::Options opt;
  opt.lines_per_task = 64;
  MapKernel k("k", {{0, 1 << 20, AccessType::kRead, 0, 1}}, 70, opt);
  std::vector<Access> buf;
  k.gen_task(1, buf);
  EXPECT_EQ(buf.size(), 6u);
}

TEST(MapKernel, GapPropagates) {
  MapKernel::Options opt;
  opt.gap = 123;
  opt.lines_per_task = 1;
  MapKernel k("k", {{0, 1 << 20, AccessType::kRead, 0, 1}}, 1, opt);
  std::vector<Access> buf;
  k.gen_task(0, buf);
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0].gap, 123);
}

TEST(TaskRng, DeterministicAndDistinct) {
  Rng a = task_rng(1, 2, 3);
  Rng b = task_rng(1, 2, 3);
  EXPECT_EQ(a.next(), b.next());
  Rng c = task_rng(1, 2, 4);
  Rng d = task_rng(1, 3, 3);
  EXPECT_NE(task_rng(1, 2, 3).next(), c.next());
  EXPECT_NE(task_rng(1, 2, 3).next(), d.next());
}

TEST(Region, LinesAndOffsets) {
  AddressSpace space;
  const Region r = make_region(space, "r", kLargePageSize);
  EXPECT_EQ(r.bytes, kLargePageSize);
  EXPECT_EQ(r.lines(1024), kLargePageSize / 1024);
  EXPECT_EQ(r.at(100), r.base + 100);
}

TEST(ScaledBytes, RoundsToBlocks) {
  EXPECT_EQ(scaled_bytes(1.0, 1.0), 1024u * 1024);
  EXPECT_EQ(scaled_bytes(1.0, 0.5), 512u * 1024);
  EXPECT_EQ(scaled_bytes(0.001, 1.0), kBasicBlockSize);  // clamps to one block
  EXPECT_EQ(scaled_bytes(10.0, 1.0) % kBasicBlockSize, 0u);
}

TEST(AccessStruct, BytesFollowsCount) {
  Access a{0, AccessType::kRead, 4, 0};
  EXPECT_EQ(a.bytes(), 512u);
}

}  // namespace
}  // namespace uvmsim
