// Pins the paper's §III-B workload characterization: regular = dense,
// sequential, repetitive; irregular = hot/cold allocation split with sparse
// seldom access to large read-only data. These tests inspect the generated
// access streams directly (no simulation).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/workload.hpp"

namespace uvmsim {
namespace {

struct StreamProfile {
  std::map<AllocId, std::uint64_t> accesses;      // transactions per allocation
  std::map<AllocId, std::set<PageNum>> pages;     // distinct pages touched
  std::map<AllocId, std::uint64_t> writes;
  std::uint64_t sequential_steps = 0;             // |delta| <= 2 lines
  std::uint64_t jumps = 0;                        // everything else
};

StreamProfile profile(const std::string& name, double scale) {
  WorkloadParams params;
  params.scale = scale;
  auto wl = make_workload(name, params);
  AddressSpace space;
  wl->build(space);

  StreamProfile p;
  std::vector<Access> buf;
  for (const auto& k : wl->schedule()) {
    const std::uint64_t tasks = k->num_tasks();
    for (std::uint64_t t = 0; t < tasks; ++t) {
      buf.clear();
      k->gen_task(t, buf);
      VirtAddr prev = 0;
      bool have_prev = false;
      for (const Access& a : buf) {
        const auto id = space.find(a.addr);
        if (!id.has_value()) {
          ADD_FAILURE() << name << " touches unmapped VA " << a.addr;
          continue;
        }
        p.accesses[*id] += a.count;
        p.pages[*id].insert(page_of(a.addr));
        if (a.type == AccessType::kWrite) p.writes[*id] += a.count;
        if (have_prev) {
          const auto delta = a.addr > prev ? a.addr - prev : prev - a.addr;
          if (delta <= 2 * 8 * kWarpAccessBytes) {
            ++p.sequential_steps;
          } else {
            ++p.jumps;
          }
        }
        prev = a.addr;
        have_prev = true;
      }
    }
  }
  return p;
}

double density_split(const StreamProfile& p) {
  // max/min of accesses-per-touched-page across allocations.
  double lo = 1e300, hi = 0;
  for (const auto& [id, acc] : p.accesses) {
    const auto pages = p.pages.at(id).size();
    if (pages < 4) continue;  // skip tiny allocations
    const double density = static_cast<double>(acc) / static_cast<double>(pages);
    lo = std::min(lo, density);
    hi = std::max(hi, density);
  }
  return hi / lo;
}

TEST(Characterization, RegularWorkloadsHaveUniformDensity) {
  for (const auto& name : {"fdtd", "hotspot", "srad"}) {
    const auto p = profile(name, 0.1);
    EXPECT_LT(density_split(p), 5.0) << name;
  }
}

TEST(Characterization, IrregularWorkloadsHaveHotColdSplit) {
  for (const auto& name : {"bfs", "sssp"}) {
    const auto p = profile(name, 0.1);
    EXPECT_GT(density_split(p), 20.0) << name;
  }
}

TEST(Characterization, RegularStreamsAreMostlySequentialPerWarp) {
  // Within a task, consecutive accesses of regular kernels interleave a few
  // operand streams; jumps between operands are expected, but the per-task
  // structure is periodic, not random. We assert a healthy sequential share
  // for the single-operand backprop-style streams instead.
  const auto p = profile("ra", 0.1);
  // ra is the anti-test: almost everything is a jump.
  EXPECT_GT(p.jumps, p.sequential_steps);
}

TEST(Characterization, ColdAllocationsAreReadOnly) {
  const auto p = profile("sssp", 0.1);
  // Identify edges/weights as the largest allocations; they must be
  // write-free while status arrays carry writes.
  WorkloadParams params;
  params.scale = 0.1;
  auto wl = make_workload("sssp", params);
  AddressSpace space;
  wl->build(space);
  for (const Allocation& a : space.allocations()) {
    if (a.name == "graph_edges" || a.name == "edge_weights") {
      EXPECT_EQ(p.writes.count(a.id), 0u) << a.name;
    }
    if (a.name == "dist") {
      EXPECT_GT(p.writes.at(a.id), 0u);
    }
  }
}

TEST(Characterization, BfsEdgeAccessesAreSparsePerPage) {
  const auto p = profile("bfs", 0.1);
  WorkloadParams params;
  params.scale = 0.1;
  auto wl = make_workload("bfs", params);
  AddressSpace space;
  wl->build(space);
  for (const Allocation& a : space.allocations()) {
    if (a.name != "graph_edges") continue;
    const double per_page = static_cast<double>(p.accesses.at(a.id)) /
                            static_cast<double>(p.pages.at(a.id).size());
    // Each edge is read once-ish: a 4 KB page holds 512 edges but the run
    // touches it with few transactions relative to the hot status arrays.
    EXPECT_LT(per_page, 64.0);
  }
}

TEST(Characterization, NwReferenceIsColdAndInputIsHot) {
  const auto p = profile("nw", 0.05);
  WorkloadParams params;
  params.scale = 0.05;
  auto wl = make_workload("nw", params);
  AddressSpace space;
  wl->build(space);
  AllocId ref = kInvalidAlloc, input = kInvalidAlloc;
  for (const Allocation& a : space.allocations()) {
    if (a.name == "reference") ref = a.id;
    if (a.name == "input_itemsets") input = a.id;
  }
  ASSERT_NE(ref, kInvalidAlloc);
  ASSERT_NE(input, kInvalidAlloc);
  EXPECT_EQ(p.writes.count(ref), 0u);
  EXPECT_GT(p.writes.at(input), 0u);
  // The score matrix is touched more often (write + neighbour re-reads).
  EXPECT_GT(p.accesses.at(input), p.accesses.at(ref));
}

TEST(Characterization, RaTableTouchesMostPagesUniformly) {
  const auto p = profile("ra", 0.2);
  WorkloadParams params;
  params.scale = 0.2;
  auto wl = make_workload("ra", params);
  AddressSpace space;
  wl->build(space);
  for (const Allocation& a : space.allocations()) {
    if (a.name != "update_table") continue;
    const auto total_pages = a.user_size / kPageSize;
    const auto touched = p.pages.at(a.id).size();
    EXPECT_GT(static_cast<double>(touched) / static_cast<double>(total_pages), 0.5);
  }
}

TEST(Characterization, BackpropNeverRevisitsStreamedWeights) {
  const auto p = profile("backprop", 0.1);
  WorkloadParams params;
  params.scale = 0.1;
  auto wl = make_workload("backprop", params);
  AddressSpace space;
  wl->build(space);
  for (const Allocation& a : space.allocations()) {
    if (a.name != "input_weights") continue;
    const double per_page = static_cast<double>(p.accesses.at(a.id)) /
                            static_cast<double>(p.pages.at(a.id).size());
    // One pass of 8-transaction lines: 32 transactions per 4 KB page.
    EXPECT_NEAR(per_page, 32.0, 1.0);
  }
}

}  // namespace
}  // namespace uvmsim
