#include <gtest/gtest.h>

#include <set>

#include "workloads/workload.hpp"

namespace uvmsim {
namespace {

WorkloadParams tiny() {
  WorkloadParams p;
  p.scale = 0.1;
  return p;
}

TEST(Registry, KnowsAllEightBenchmarks) {
  const auto& names = workload_names();
  ASSERT_EQ(names.size(), 8u);
  for (const auto& n : names) {
    auto wl = make_workload(n, tiny());
    ASSERT_NE(wl, nullptr);
    EXPECT_EQ(wl->name(), n);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_workload("nosuch", tiny()), std::invalid_argument);
}

TEST(Registry, PaperClassification) {
  for (const auto& n : {"backprop", "fdtd", "hotspot", "srad"}) {
    EXPECT_FALSE(make_workload(n, tiny())->irregular()) << n;
  }
  for (const auto& n : {"bfs", "nw", "ra", "sssp"}) {
    EXPECT_TRUE(make_workload(n, tiny())->irregular()) << n;
  }
}

class WorkloadShape : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadShape, BuildsAllocationsAndSchedule) {
  auto wl = make_workload(GetParam(), tiny());
  AddressSpace space;
  wl->build(space);
  EXPECT_GT(space.num_allocations(), 1u);
  EXPECT_GT(space.footprint_bytes(), 0u);

  const auto schedule = wl->schedule();
  EXPECT_FALSE(schedule.empty());
  for (const auto& k : schedule) {
    ASSERT_NE(k, nullptr);
    EXPECT_FALSE(k->name().empty());
  }
}

TEST_P(WorkloadShape, AccessesStayWithinAllocations) {
  auto wl = make_workload(GetParam(), tiny());
  AddressSpace space;
  wl->build(space);
  std::vector<Access> buf;
  std::uint64_t checked = 0;
  for (const auto& k : wl->schedule()) {
    const std::uint64_t tasks = k->num_tasks();
    // Sample tasks across the kernel (checking all is slow for big kernels).
    for (std::uint64_t t = 0; t < tasks && checked < 200000; t += 1 + tasks / 64) {
      buf.clear();
      k->gen_task(t, buf);
      for (const Access& a : buf) {
        ++checked;
        const auto owner = space.find(a.addr);
        ASSERT_TRUE(owner.has_value())
            << GetParam() << ": " << k->name() << " touches unmapped VA " << a.addr;
        // The whole coalesced run must stay inside one basic block's span
        // and inside the allocation.
        EXPECT_TRUE(space.alloc(*owner).contains(a.addr + a.bytes() - 1));
        EXPECT_EQ(block_of(a.addr), block_of(a.addr + a.bytes() - 1))
            << "coalesced run crosses a 64 KB boundary";
        EXPECT_GE(a.count, 1u);
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(WorkloadShape, DeterministicGeneration) {
  auto w1 = make_workload(GetParam(), tiny());
  auto w2 = make_workload(GetParam(), tiny());
  AddressSpace s1, s2;
  w1->build(s1);
  w2->build(s2);
  EXPECT_EQ(s1.footprint_bytes(), s2.footprint_bytes());

  const auto k1 = w1->schedule();
  const auto k2 = w2->schedule();
  ASSERT_EQ(k1.size(), k2.size());
  std::vector<Access> a, b;
  for (std::size_t i = 0; i < k1.size(); i += 1 + k1.size() / 8) {
    ASSERT_EQ(k1[i]->num_tasks(), k2[i]->num_tasks());
    if (k1[i]->num_tasks() == 0) continue;
    a.clear();
    b.clear();
    k1[i]->gen_task(0, a);
    k2[i]->gen_task(0, b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].addr, b[j].addr);
      EXPECT_EQ(a[j].type, b[j].type);
      EXPECT_EQ(a[j].count, b[j].count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadShape,
                         ::testing::Values("backprop", "fdtd", "hotspot", "srad", "bfs",
                                           "nw", "ra", "sssp"));

TEST(WorkloadScale, ScaleGrowsFootprint) {
  for (const auto& n : workload_names()) {
    WorkloadParams small, big;
    small.scale = 0.1;
    big.scale = 0.3;
    AddressSpace s1, s2;
    make_workload(n, small)->build(s1);
    make_workload(n, big)->build(s2);
    EXPECT_LT(s1.footprint_bytes(), s2.footprint_bytes()) << n;
  }
}

TEST(WorkloadSeeds, IrregularWorkloadsVaryWithSeed) {
  WorkloadParams p1 = tiny(), p2 = tiny();
  p1.seed = 1;
  p2.seed = 2;
  auto w1 = make_workload("ra", p1);
  auto w2 = make_workload("ra", p2);
  AddressSpace s1, s2;
  w1->build(s1);
  w2->build(s2);
  std::vector<Access> a, b;
  w1->schedule()[0]->gen_task(0, a);
  w2->schedule()[0]->gen_task(0, b);
  std::set<VirtAddr> addrs_a, addrs_b;
  for (const Access& x : a) addrs_a.insert(x.addr);
  for (const Access& x : b) addrs_b.insert(x.addr);
  EXPECT_NE(addrs_a, addrs_b);
}

TEST(WorkloadIterations, IterationOverrideChangesScheduleLength) {
  WorkloadParams p = tiny();
  p.iterations = 2;
  const auto short_run = make_workload("fdtd", p);
  p.iterations = 6;
  const auto long_run = make_workload("fdtd", p);
  AddressSpace s1, s2;
  short_run->build(s1);
  long_run->build(s2);
  EXPECT_LT(short_run->schedule().size(), long_run->schedule().size());
}

}  // namespace
}  // namespace uvmsim
