#include <gtest/gtest.h>

#include <set>

#include "core/simulator.hpp"
#include "workloads/graph_gen.hpp"

namespace uvmsim {
namespace {

TEST(RoadGraph, LatticeInvariants) {
  const CsrGraph g = make_road_graph(10000, 0.0, 7);  // 100x100, no shortcuts
  EXPECT_EQ(g.num_nodes, 10000u);
  // Interior nodes have degree 4; corners 2; edges 3.
  EXPECT_EQ(g.degree(0), 2u);            // corner
  EXPECT_EQ(g.degree(50), 3u);           // top edge
  EXPECT_EQ(g.degree(50 * 100 + 50), 4u);  // interior
  // Total edges: 2 * 2 * side * (side-1) directed.
  EXPECT_EQ(g.num_edges(), 2u * 2u * 100u * 99u);
  for (const auto t : g.targets) EXPECT_LT(t, g.num_nodes);
}

TEST(RoadGraph, NeighboursAreAdjacent) {
  const CsrGraph g = make_road_graph(2500, 0.0, 11);  // 50x50
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    for (std::uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      const std::uint32_t u = g.targets[e];
      const auto dx = static_cast<int>(u % 50) - static_cast<int>(v % 50);
      const auto dy = static_cast<int>(u / 50) - static_cast<int>(v / 50);
      EXPECT_EQ(std::abs(dx) + std::abs(dy), 1) << v << "->" << u;
    }
  }
}

TEST(RoadGraph, ShortcutsAddLongEdges) {
  const CsrGraph without = make_road_graph(10000, 0.0, 3);
  const CsrGraph with = make_road_graph(10000, 0.1, 3);
  EXPECT_GT(with.num_edges(), without.num_edges());
}

TEST(RoadGraph, HighDiameterSmallFrontiers) {
  const CsrGraph road = make_road_graph(40000, 0.0, 5);     // 200x200
  const CsrGraph power = make_power_law_graph(40000, 10, 0.6, 5);
  const auto road_levels = bfs_levels(road, 0);
  const auto power_levels = bfs_levels(power, 0);
  // Road: diameter ~ 2*side; power-law: a handful of levels.
  EXPECT_GT(road_levels.size(), 20 * power_levels.size());
  std::size_t road_peak = 0, power_peak = 0;
  for (const auto& l : road_levels) road_peak = std::max(road_peak, l.size());
  for (const auto& l : power_levels) power_peak = std::max(power_peak, l.size());
  EXPECT_LT(road_peak, power_peak / 10);
}

TEST(RoadGraph, DeterministicPerSeed) {
  const CsrGraph a = make_road_graph(2500, 0.05, 9);
  const CsrGraph b = make_road_graph(2500, 0.05, 9);
  EXPECT_EQ(a.targets, b.targets);
}

TEST(RoadGraphWorkloads, BfsAndSsspRunOnRoadInputs) {
  WorkloadParams params;
  params.scale = 0.2;
  params.graph = "road";
  SimConfig cfg;
  cfg.gpu.num_sms = 8;
  cfg.gpu.warps_per_sm = 2;
  for (const auto& name : {"bfs", "sssp"}) {
    const RunResult r = run_workload(name, cfg, 1.25, params);
    EXPECT_GT(r.stats.total_accesses, 0u) << name;
    EXPECT_GT(r.kernels.size(), 4u) << name;
  }
}

TEST(RoadGraphWorkloads, InputStructureChangesTheRunShape) {
  // Road traversals split the same work into many more, much smaller
  // launches (high diameter, tiny frontiers); the per-launch sparse phase
  // touches a sliver of the edge array instead of most of it. (Which input
  // suffers more under oversubscription is an empirical question the
  // ext_graph_inputs bench reports — with Rodinia-style per-level status
  // scans, the many road levels pay the dense-scan thrash repeatedly.)
  WorkloadParams power, road;
  power.scale = 0.5;
  road.scale = 0.5;
  road.graph = "road";
  SimConfig cfg;
  cfg.gpu.num_sms = 8;
  cfg.gpu.warps_per_sm = 2;

  const RunResult p = run_workload("bfs", cfg, 0.0, power);
  const RunResult r = run_workload("bfs", cfg, 0.0, road);
  EXPECT_GT(r.kernels.size(), 4 * p.kernels.size());
  const double p_per_launch = static_cast<double>(p.stats.total_accesses) /
                              static_cast<double>(p.kernels.size());
  const double r_per_launch = static_cast<double>(r.stats.total_accesses) /
                              static_cast<double>(r.kernels.size());
  EXPECT_LT(r_per_launch, p_per_launch / 2);
}

}  // namespace
}  // namespace uvmsim
