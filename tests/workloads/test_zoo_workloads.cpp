// Workload-zoo coverage: the four record/replay corpus families (pchase,
// hashjoin, pipeline, nbody) are registered, classified, deterministic, and
// structurally sound (allocations exist, schedules are non-empty, every
// access stays inside the declared span).
#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {
namespace {

const std::vector<std::string>& zoo() { return zoo_workload_names(); }

/// Build the workload (generators derive their layout/state in build()) and
/// flatten the first `max_tasks` tasks of every launch into one stream.
[[nodiscard]] std::vector<Access> collect_stream(Workload& wl, std::size_t max_tasks) {
  AddressSpace space;
  wl.build(space);
  std::vector<Access> all;
  std::vector<Access> task;
  for (const auto& kernel : wl.schedule()) {
    const std::uint64_t n = std::min<std::uint64_t>(kernel->num_tasks(), max_tasks);
    for (std::uint64_t t = 0; t < n; ++t) {
      task.clear();
      kernel->gen_task(t, task);
      all.insert(all.end(), task.begin(), task.end());
    }
  }
  return all;
}

TEST(ZooRegistry, AllFourFamiliesAreRegistered) {
  ASSERT_EQ(zoo().size(), 4u);
  EXPECT_EQ(zoo()[0], "pchase");
  EXPECT_EQ(zoo()[1], "hashjoin");
  EXPECT_EQ(zoo()[2], "pipeline");
  EXPECT_EQ(zoo()[3], "nbody");
  for (const std::string& name : zoo()) {
    const std::unique_ptr<Workload> wl = make_workload(name);
    ASSERT_NE(wl, nullptr) << name;
    EXPECT_EQ(wl->name(), name);
  }
}

TEST(ZooRegistry, GeneratorListIncludesZooButNotReplay) {
  const std::vector<std::string> all = all_generator_workload_names();
  EXPECT_EQ(all.size(), 16u);  // 8 paper + 4 extra + 4 zoo
  const std::set<std::string> s(all.begin(), all.end());
  for (const std::string& name : zoo()) EXPECT_EQ(s.count(name), 1u) << name;
  EXPECT_EQ(s.count("replay"), 0u);  // needs trace_file; not a generator
}

TEST(ZooRegistry, IrregularityClassification) {
  // pchase/hashjoin are data-dependent gather patterns; pipeline/nbody are
  // streaming/tiled regular kernels.
  EXPECT_TRUE(make_workload("pchase")->irregular());
  EXPECT_TRUE(make_workload("hashjoin")->irregular());
  EXPECT_FALSE(make_workload("pipeline")->irregular());
  EXPECT_FALSE(make_workload("nbody")->irregular());
}

class ZooWorkload : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooWorkload, BuildsAllocationsAndNonEmptySchedule) {
  WorkloadParams p;
  p.scale = 0.05;
  const std::unique_ptr<Workload> wl = make_workload(GetParam(), p);
  AddressSpace space;
  wl->build(space);
  EXPECT_GE(space.allocations().size(), 2u);
  EXPECT_GT(space.span_end(), 0u);

  const auto sched = wl->schedule();
  ASSERT_FALSE(sched.empty());
  std::uint64_t tasks = 0;
  for (const auto& k : sched) {
    EXPECT_FALSE(k->name().empty());
    tasks += k->num_tasks();
  }
  EXPECT_GT(tasks, 0u);
}

TEST_P(ZooWorkload, AccessesStayInsideTheSpanAndWithinOneBlock) {
  WorkloadParams p;
  p.scale = 0.05;
  const std::unique_ptr<Workload> wl = make_workload(GetParam(), p);
  std::uint64_t span = 0;
  {
    AddressSpace probe;
    make_workload(GetParam(), p)->build(probe);
    span = probe.span_end();
  }

  bool saw_read = false;
  bool saw_write = false;
  for (const Access& a : collect_stream(*wl, 64)) {
    EXPECT_EQ(a.addr % 128, 0u);
    EXPECT_GE(a.count, 1u);
    EXPECT_LT(a.addr + a.bytes(), span + 1);
    // count*128 bytes must not cross a 64 KB basic-block boundary.
    EXPECT_EQ(block_of(a.addr), block_of(a.addr + a.bytes() - 1));
    saw_read = saw_read || a.type == AccessType::kRead;
    saw_write = saw_write || a.type == AccessType::kWrite;
  }
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_write);
}

TEST_P(ZooWorkload, GenerationIsDeterministicAndOrderIndependent) {
  WorkloadParams p;
  p.scale = 0.05;
  p.seed = 1234;
  const std::unique_ptr<Workload> a = make_workload(GetParam(), p);
  const std::unique_ptr<Workload> b = make_workload(GetParam(), p);
  AddressSpace sp_a;
  AddressSpace sp_b;
  a->build(sp_a);
  b->build(sp_b);

  const auto sa = a->schedule();
  const auto sb = b->schedule();
  ASSERT_EQ(sa.size(), sb.size());
  std::vector<Access> ta;
  std::vector<Access> tb;
  for (std::size_t k = 0; k < sa.size(); ++k) {
    const std::uint64_t n = std::min<std::uint64_t>(sa[k]->num_tasks(), 32);
    // Generate b's tasks in reverse order: per-task streams must not depend
    // on generation order (the replay/recording contract).
    for (std::uint64_t t = 0; t < n; ++t) {
      ta.clear();
      tb.clear();
      sa[k]->gen_task(t, ta);
      sb[k]->gen_task(n - 1 - t, tb);
    }
    for (std::uint64_t t = 0; t < n; ++t) {
      ta.clear();
      tb.clear();
      sa[k]->gen_task(t, ta);
      sb[k]->gen_task(t, tb);
      ASSERT_EQ(ta.size(), tb.size()) << GetParam() << " launch " << k << " task " << t;
      for (std::size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].addr, tb[i].addr);
        EXPECT_EQ(ta[i].type, tb[i].type);
        EXPECT_EQ(ta[i].count, tb[i].count);
        EXPECT_EQ(ta[i].gap, tb[i].gap);
      }
    }
  }
}

TEST_P(ZooWorkload, SeedChangesTheIrregularStreams) {
  const std::string name = GetParam();
  if (name == "pipeline" || name == "nbody") return;  // regular: seed-free
  WorkloadParams p1;
  p1.scale = 0.05;
  p1.seed = 1;
  WorkloadParams p2 = p1;
  p2.seed = 2;
  const std::vector<Access> s1 = collect_stream(*make_workload(name, p1), 16);
  const std::vector<Access> s2 = collect_stream(*make_workload(name, p2), 16);
  ASSERT_FALSE(s1.empty());
  const bool differs =
      s1.size() != s2.size() ||
      !std::equal(s1.begin(), s1.end(), s2.begin(),
                  [](const Access& a, const Access& b) { return a.addr == b.addr; });
  EXPECT_TRUE(differs) << name << ": different seeds produced identical streams";
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooWorkload, ::testing::ValuesIn(zoo()),
                         [](const ::testing::TestParamInfo<std::string>& p) {
                           return p.param;
                         });

}  // namespace
}  // namespace uvmsim
