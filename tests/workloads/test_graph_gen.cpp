#include "workloads/graph_gen.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace uvmsim {
namespace {

TEST(GraphGen, CsrInvariants) {
  const CsrGraph g = make_power_law_graph(1000, 8, 0.6, 42);
  EXPECT_EQ(g.num_nodes, 1000u);
  ASSERT_EQ(g.offsets.size(), 1001u);
  EXPECT_EQ(g.offsets.front(), 0u);
  for (std::size_t i = 1; i < g.offsets.size(); ++i) {
    EXPECT_GE(g.offsets[i], g.offsets[i - 1]);  // monotone
  }
  EXPECT_EQ(g.targets.size(), g.num_edges());
  for (const auto t : g.targets) EXPECT_LT(t, g.num_nodes);
}

TEST(GraphGen, AverageDegreeIsApproximatelyRequested) {
  const CsrGraph g = make_power_law_graph(5000, 10, 0.6, 7);
  const double avg = static_cast<double>(g.num_edges()) / g.num_nodes;
  EXPECT_NEAR(avg, 10.0, 2.0);
}

TEST(GraphGen, DegreesAreSkewed) {
  const CsrGraph g = make_power_law_graph(5000, 10, 0.8, 11);
  std::uint32_t max_deg = 0;
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) max_deg = std::max(max_deg, g.degree(v));
  const double avg = static_cast<double>(g.num_edges()) / g.num_nodes;
  EXPECT_GT(max_deg, 2 * avg);  // heavy tail
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) EXPECT_GE(g.degree(v), 1u);
}

TEST(GraphGen, DeterministicForSeed) {
  const CsrGraph a = make_power_law_graph(500, 6, 0.6, 99);
  const CsrGraph b = make_power_law_graph(500, 6, 0.6, 99);
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.targets, b.targets);
  const CsrGraph c = make_power_law_graph(500, 6, 0.6, 100);
  EXPECT_NE(a.targets, c.targets);
}

TEST(BfsLevels, FirstLevelIsSource) {
  const CsrGraph g = make_power_law_graph(2000, 8, 0.6, 13);
  const auto levels = bfs_levels(g, 0);
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels[0], std::vector<std::uint32_t>{0});
}

TEST(BfsLevels, NoNodeAppearsTwice) {
  const CsrGraph g = make_power_law_graph(2000, 8, 0.6, 13);
  const auto levels = bfs_levels(g, 0);
  std::set<std::uint32_t> seen;
  for (const auto& level : levels) {
    for (const auto v : level) {
      EXPECT_TRUE(seen.insert(v).second) << "node " << v << " visited twice";
    }
  }
}

TEST(BfsLevels, ReachesMostOfARandomGraph) {
  const CsrGraph g = make_power_law_graph(5000, 10, 0.6, 17);
  const auto levels = bfs_levels(g, 0);
  std::size_t reached = 0;
  for (const auto& level : levels) reached += level.size();
  EXPECT_GT(reached, g.num_nodes / 2);  // random graphs are well connected
  EXPECT_GE(levels.size(), 3u);         // interesting level structure
}

TEST(BfsLevels, FrontierGrowsThenShrinks) {
  const CsrGraph g = make_power_law_graph(20000, 10, 0.6, 23);
  const auto levels = bfs_levels(g, 0);
  std::size_t peak = 0, peak_idx = 0;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i].size() > peak) {
      peak = levels[i].size();
      peak_idx = i;
    }
  }
  EXPECT_GT(peak_idx, 0u);
  EXPECT_LT(peak_idx, levels.size() - 1);
  EXPECT_LT(levels.back().size(), peak);
}

TEST(SsspRounds, StartsAtSourceAndConverges) {
  const CsrGraph g = make_power_law_graph(3000, 8, 0.6, 31);
  const auto rounds = sssp_rounds(g, 0, 32, 31);
  ASSERT_FALSE(rounds.empty());
  EXPECT_EQ(rounds[0], std::vector<std::uint32_t>{0});
  EXPECT_LT(rounds.size(), 32u);  // converged before the cap
}

TEST(SsspRounds, RespectsRoundCap) {
  const CsrGraph g = make_power_law_graph(3000, 8, 0.6, 31);
  const auto rounds = sssp_rounds(g, 0, 3, 31);
  EXPECT_LE(rounds.size(), 3u);
}

TEST(SsspRounds, WorklistsRevisitNodes) {
  // Unlike BFS, Bellman-Ford relaxation can requeue a node in later rounds.
  const CsrGraph g = make_power_law_graph(3000, 10, 0.6, 37);
  const auto rounds = sssp_rounds(g, 0, 16, 37);
  std::size_t total = 0;
  std::set<std::uint32_t> distinct;
  for (const auto& r : rounds) {
    total += r.size();
    distinct.insert(r.begin(), r.end());
  }
  EXPECT_GT(total, distinct.size());
}

}  // namespace
}  // namespace uvmsim
