#include <gtest/gtest.h>

#include <algorithm>

#include "prefetch/prefetcher.hpp"

namespace uvmsim {
namespace {

class PrefetcherTest : public ::testing::Test {
 protected:
  PrefetcherTest() {
    space_.allocate("a", 2 * kLargePageSize);
    table_ = std::make_unique<BlockTable>(space_);
  }
  void residency(BlockNum b) {
    table_->mark_in_flight(b);
    table_->mark_resident(b, 1);
  }
  AddressSpace space_;
  std::unique_ptr<BlockTable> table_;
};

TEST_F(PrefetcherTest, NoPrefetcherReturnsNothing) {
  NoPrefetcher pf;
  std::vector<BlockNum> out;
  pf.expand(0, *table_, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(pf.name(), "none");
}

TEST_F(PrefetcherTest, SequentialPullsNextBlock) {
  SequentialPrefetcher pf(1);
  std::vector<BlockNum> out;
  pf.expand(4, *table_, out);
  EXPECT_EQ(out, (std::vector<BlockNum>{5}));
}

TEST_F(PrefetcherTest, SequentialSkipsResidentNeighbours) {
  SequentialPrefetcher pf(2);
  residency(5);
  std::vector<BlockNum> out;
  pf.expand(4, *table_, out);
  EXPECT_EQ(out, (std::vector<BlockNum>{6, 7}));
}

TEST_F(PrefetcherTest, SequentialStopsAtChunkBoundary) {
  SequentialPrefetcher pf(4);
  std::vector<BlockNum> out;
  pf.expand(30, *table_, out);  // chunk 0 ends at block 31
  EXPECT_EQ(out, (std::vector<BlockNum>{31}));
}

TEST_F(PrefetcherTest, RandomStaysWithinChunk) {
  RandomPrefetcher pf(42);
  for (int i = 0; i < 200; ++i) {
    std::vector<BlockNum> out;
    pf.expand(33, *table_, out);  // chunk 1
    for (BlockNum b : out) {
      EXPECT_EQ(chunk_of_block(b), 1u);
      EXPECT_NE(b, 33u);
    }
  }
}

TEST_F(PrefetcherTest, RandomNeverSelectsResident) {
  RandomPrefetcher pf(42);
  for (BlockNum b = 0; b < 31; ++b) {
    if (b != 12) residency(b);
  }
  for (int i = 0; i < 100; ++i) {
    std::vector<BlockNum> out;
    pf.expand(12, *table_, out);
    for (BlockNum b : out) {
      EXPECT_EQ(table_->block(b).residence, Residence::kHost);
    }
  }
}

TEST_F(PrefetcherTest, FactoryMakesAllKinds) {
  EXPECT_EQ(make_prefetcher(PrefetcherKind::kNone, 1)->name(), "none");
  EXPECT_EQ(make_prefetcher(PrefetcherKind::kSequential, 1)->name(), "sequential");
  EXPECT_EQ(make_prefetcher(PrefetcherKind::kRandom, 1)->name(), "random");
  EXPECT_EQ(make_prefetcher(PrefetcherKind::kTree, 1)->name(), "tree");
}

}  // namespace
}  // namespace uvmsim
