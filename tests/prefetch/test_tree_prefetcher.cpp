#include <gtest/gtest.h>

#include <bit>

#include "prefetch/prefetcher.hpp"

namespace uvmsim {
namespace {

// ---------------------------------------------------------------------------
// Pure tree logic (expand_mask)
// ---------------------------------------------------------------------------

TEST(TreeMask, SingleLeafChunkNeverPrefetches) {
  EXPECT_EQ(TreePrefetcher::expand_mask(0b1, 0, 1), 0u);
}

TEST(TreeMask, FirstTouchOfPairPrefetchesSibling) {
  // Two leaves, leaf 0 faulted: the 2-leaf subtree is 50 % occupied... which
  // is not *strictly* more than 50 %, so nothing is prefetched yet? No: 1/2
  // occupancy is exactly 50 %, the rule is strict.
  EXPECT_EQ(TreePrefetcher::expand_mask(0b01, 0, 2), 0u);
}

TEST(TreeMask, SecondTouchFillsNothingWhenSiblingPresent) {
  EXPECT_EQ(TreePrefetcher::expand_mask(0b11, 1, 2), 0u);
}

TEST(TreeMask, MajorityInPairPullsUpperLevels) {
  // 4 leaves, leaves 0 and 1 occupied, fault at 1: pair {0,1} is 100 % (>50%)
  // but fully occupied; the 4-subtree is 2/4 = 50 %, not strict, stop.
  EXPECT_EQ(TreePrefetcher::expand_mask(0b0011, 1, 4), 0u);
  // Leaves 0,1,2 occupied, fault at 2: 4-subtree is 3/4 > 50 % -> leaf 3.
  EXPECT_EQ(TreePrefetcher::expand_mask(0b0111, 2, 4), 0b1000u);
}

TEST(TreeMask, CascadeToRoot) {
  // 8 leaves: 0..4 occupied, fault at 4. Pair {4,5}: 1/2, not strict.
  // Quad {4..7}: 1/4. Root {0..7}: 5/8 > 50 % -> prefetch 5,6,7.
  EXPECT_EQ(TreePrefetcher::expand_mask(0b00011111, 4, 8), 0b11100000u);
}

TEST(TreeMask, LowerLevelFillPropagates) {
  // 8 leaves: 0,1,2 occupied plus fault at 6. Pair {6,7}: 1/2 no.
  // Quad {4..7}: 1/4 no. Root: 4/8 no. Nothing prefetched.
  EXPECT_EQ(TreePrefetcher::expand_mask(0b01000111, 6, 8), 0u);
  // Add leaf 5: root is 5/8 -> fills 3,4,7.
  EXPECT_EQ(TreePrefetcher::expand_mask(0b01100111, 6, 8), 0b10011000u);
}

TEST(TreeMask, FaultedLeafNeverInResult) {
  for (std::uint32_t leaf = 0; leaf < 8; ++leaf) {
    const std::uint32_t occ = 0xffu & ~(1u << leaf);
    const std::uint32_t mask = TreePrefetcher::expand_mask(occ | (1u << leaf), leaf, 8);
    EXPECT_EQ(mask & (1u << leaf), 0u);
  }
}

TEST(TreeMask, FullChunkPrefetchesNothing) {
  EXPECT_EQ(TreePrefetcher::expand_mask(0xffffffffu, 13, 32), 0u);
}

// Property sweep: the prefetch mask never overlaps occupancy, stays within
// the chunk, and never selects leaves outside subtrees above 50 % occupancy.
class TreeMaskProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TreeMaskProperty, MaskIsConsistent) {
  const std::uint32_t num_leaves = 16;
  std::uint64_t s = GetParam();
  for (int trial = 0; trial < 64; ++trial) {
    const auto occ_raw = static_cast<std::uint32_t>(splitmix64(s)) & 0xffffu;
    const auto leaf = static_cast<std::uint32_t>(splitmix64(s)) % num_leaves;
    const std::uint32_t occ = occ_raw | (1u << leaf);
    const std::uint32_t mask = TreePrefetcher::expand_mask(occ, leaf, num_leaves);

    EXPECT_EQ(mask & occ, 0u) << "prefetching an occupied leaf";
    EXPECT_EQ(mask >> num_leaves, 0u) << "prefetching beyond the chunk";

    // After applying the mask, every subtree containing the faulted leaf that
    // was strictly above 50 % must be completely full.
    const std::uint32_t after = occ | mask;
    for (std::uint32_t size = 2; size <= num_leaves; size <<= 1) {
      const std::uint32_t lo = leaf / size * size;
      const std::uint32_t sub = (size >= 32 ? ~0u : ((1u << size) - 1)) << lo;
      const auto count = static_cast<std::uint32_t>(std::popcount(after & sub));
      if (count * 2 > size) {
        // The rule applies bottom-up cumulatively; a >50 % subtree on the
        // fault path must have been filled entirely.
        EXPECT_EQ(after & sub, sub);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeMaskProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------------------------------------------------------------------------
// Expansion against a real BlockTable
// ---------------------------------------------------------------------------

class TreeExpandTest : public ::testing::Test {
 protected:
  TreeExpandTest() {
    space_.allocate("a", kLargePageSize + 256 * 1024);  // chunk0: 32, chunk1: 4
    table_ = std::make_unique<BlockTable>(space_);
  }
  void residency(BlockNum b) {
    table_->mark_in_flight(b);
    table_->mark_resident(b, 1);
  }
  AddressSpace space_;
  std::unique_ptr<BlockTable> table_;
  TreePrefetcher pf_;
};

TEST_F(TreeExpandTest, ExpandsWithinChunkOnly) {
  for (BlockNum b = 0; b < 20; ++b) residency(b);  // chunk 0 is 20/32
  std::vector<BlockNum> out;
  pf_.expand(20, *table_, out);  // 21/32 > 50 % at root
  EXPECT_FALSE(out.empty());
  for (BlockNum b : out) {
    EXPECT_EQ(chunk_of_block(b), 0u);
    EXPECT_EQ(table_->block(b).residence, Residence::kHost);
  }
}

TEST_F(TreeExpandTest, EmptyChunkFirstTouchPrefetchesNothing) {
  std::vector<BlockNum> out;
  pf_.expand(0, *table_, out);
  EXPECT_TRUE(out.empty());
}

TEST_F(TreeExpandTest, PartialChunkUsesItsOwnLeafCount) {
  // Chunk 1 has 4 blocks (32..35). Occupying 2 and faulting a third exceeds
  // 50 % of the 4-leaf tree and pulls the last one.
  residency(32);
  residency(33);
  std::vector<BlockNum> out;
  pf_.expand(34, *table_, out);
  EXPECT_EQ(out, (std::vector<BlockNum>{35}));
}

TEST_F(TreeExpandTest, InFlightBlocksCountAsOccupied) {
  for (BlockNum b = 0; b < 16; ++b) residency(b);
  table_->mark_in_flight(16);  // 17th block pending
  std::vector<BlockNum> out;
  pf_.expand(17, *table_, out);  // 18/32 > 50 %
  EXPECT_FALSE(out.empty());
  for (BlockNum b : out) EXPECT_NE(b, 16u);  // never re-selects in-flight
}

TEST_F(TreeExpandTest, AlreadySelectedBlocksCountAsOccupied) {
  for (BlockNum b = 0; b < 15; ++b) residency(b);
  std::vector<BlockNum> out{15, 16};  // pretend an earlier fault selected these
  pf_.expand(17, *table_, out);
  // No duplicates of pre-selected blocks.
  std::vector<BlockNum> sorted = out;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

}  // namespace
}  // namespace uvmsim
