// uvmsim CLI: run any workload x policy x oversubscription combination from
// the command line and print the result statistics.
//
//   uvmsim --workload sssp --policy adaptive --oversub 1.25 --ts 8 -p 8
//   uvmsim --workload fdtd --policy baseline --scale 0.5 --eviction lru
//   uvmsim --workload bfs --record bfs.trb        # capture the task trace
//   uvmsim --replay bfs.trb --policy adaptive     # re-drive it elsewhere
//   uvmsim --workload ra --oversub 1.25 --timeline ra_timeline.csv
//   uvmsim --list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <memory>
#include <optional>
#include <string>

#include <uvmsim/uvmsim.hpp>

#include "flag_parse.hpp"

namespace {

using namespace uvmsim;

void usage() {
  std::printf(
      "usage: uvmsim [options]\n"
      "  --workload NAME    backprop|fdtd|hotspot|srad|bfs|nw|ra|sssp (default sssp)\n"
      "  --policy NAME      any registered policy (default baseline); see --policies\n"
      "  --policies         list registered migration policies and exit\n"
      "  --eviction NAME    lru|lfu|tree (default: lru for baseline, lfu otherwise)\n"
      "  --prefetcher NAME  tree|sequential|random|none (default tree)\n"
      "  --oversub F        working-set/capacity factor; 0 = fits (default 0)\n"
      "  --capacity-mb N    explicit device capacity (ignored when --oversub > 0)\n"
      "  --scale F          workload footprint scale (default 0.25)\n"
      "  --ts N             static access counter threshold (default 8)\n"
      "  -p / --penalty N   multiplicative migration penalty (default 8)\n"
      "  --seed N           workload RNG seed\n"
      "  --iterations N     override workload iteration count\n"
      "  --graph NAME       bfs/sssp input structure: powerlaw|road\n"
      "  --config           print the resolved configuration (Table I style)\n"
      "  --record FILE      capture the task trace to FILE (binary UVMTRB1;\n"
      "                     replays byte-identically, see docs/TRACES.md)\n"
      "  --replay FILE      replay a captured trace instead of a workload\n"
      "                     (UVMTRB1 or legacy UVMTRC1, sniffed by magic)\n"
      "  --timeline FILE    write periodic occupancy/traffic samples to FILE\n"
      "  --metrics FILE     write the per-interval time series of every\n"
      "                     registered metric (delta + cumulative) to FILE\n"
      "  --metrics-interval N  metrics sampling interval in cycles (default 100000)\n"
      "  --chrome-trace FILE  write a Chrome trace-event JSON of the run\n"
      "                     (open in chrome://tracing or ui.perfetto.dev)\n"
      "  --mitigation       enable nvidia-uvm-style thrash throttling\n"
      "  --audit            enable the invariant auditor (docs/INVARIANTS.md);\n"
      "                     tune with --set audit.interval_events=N\n"
      "  --set K=V          set any SimConfig key (repeatable; see --keys)\n"
      "  --config-file F    load key=value settings from a file\n"
      "  --keys             list every settable configuration key\n"
      "  --json             print the result as JSON instead of text\n"
      "  --classify         print the per-allocation hot/cold classification\n"
      "  --l2               enable the L2 cache model\n"
      "  --list             list available workloads\n");
}

std::optional<PrefetcherKind> parse_prefetcher(const std::string& s) {
  if (s == "tree") return PrefetcherKind::kTree;
  if (s == "sequential") return PrefetcherKind::kSequential;
  if (s == "random") return PrefetcherKind::kRandom;
  if (s == "none") return PrefetcherKind::kNone;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "sssp";
  SimConfig cfg;
  WorkloadParams params;
  params.scale = 0.25;
  double oversub = 0.0;
  bool eviction_set = false;
  bool show_config = false;
  std::string record_path, replay_path, timeline_path;
  std::string metrics_path, chrome_trace_path;
  Cycle metrics_interval = 100000;
  bool json_output = false;
  bool classify = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    // Strict numeric operands: a malformed number aborts instead of being
    // atof'd to 0 and silently running the wrong experiment.
    auto next_double = [&]() -> double {
      const char* v = next();
      double out = 0.0;
      if (!tools::parse_double(v, out)) {
        std::fprintf(stderr, "invalid value for %s: '%s'\n", arg.c_str(), v);
        std::exit(2);
      }
      return out;
    };
    auto next_u64 = [&]() -> std::uint64_t {
      const char* v = next();
      std::uint64_t out = 0;
      if (!tools::parse_u64(v, out)) {
        std::fprintf(stderr, "invalid value for %s: '%s'\n", arg.c_str(), v);
        std::exit(2);
      }
      return out;
    };
    auto next_u32 = [&]() -> std::uint32_t {
      const char* v = next();
      std::uint32_t out = 0;
      if (!tools::parse_u32(v, out)) {
        std::fprintf(stderr, "invalid value for %s: '%s'\n", arg.c_str(), v);
        std::exit(2);
      }
      return out;
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--list") {
      for (const auto& n : workload_names()) std::printf("%s\n", n.c_str());
      for (const auto& n : extra_workload_names()) std::printf("%s (extra)\n", n.c_str());
      for (const auto& n : zoo_workload_names()) std::printf("%s (zoo)\n", n.c_str());
      return 0;
    } else if (arg == "--workload" || arg == "-w") {
      workload = next();
    } else if (arg == "--policy") {
      const char* v = next();
      if (!apply_policy_name(cfg.policy, v)) {
        std::fprintf(stderr, "unknown policy '%s' (registered: %s)\n", v,
                     registered_policy_names().c_str());
        return 2;
      }
    } else if (arg == "--policies") {
      for (const PolicyInfo& info : PolicyRegistry::instance().entries()) {
        std::printf("%-10s %s\n", info.slug.c_str(), info.summary.c_str());
      }
      return 0;
    } else if (arg == "--eviction") {
      const std::string v = next();
      if (v != "lru" && v != "lfu" && v != "tree") {
        std::fprintf(stderr, "unknown eviction policy\n");
        return 2;
      }
      cfg.mem.eviction = v == "lru"   ? EvictionKind::kLru
                         : v == "lfu" ? EvictionKind::kLfu
                                      : EvictionKind::kTree;
      eviction_set = true;
    } else if (arg == "--prefetcher") {
      const auto p = parse_prefetcher(next());
      if (!p) {
        std::fprintf(stderr, "unknown prefetcher\n");
        return 2;
      }
      cfg.mem.prefetcher = *p;
    } else if (arg == "--oversub") {
      oversub = next_double();
    } else if (arg == "--capacity-mb") {
      cfg.mem.device_capacity_bytes = next_u64() << 20;
    } else if (arg == "--scale") {
      params.scale = next_double();
    } else if (arg == "--ts") {
      cfg.policy.static_threshold = next_u32();
    } else if (arg == "-p" || arg == "--penalty") {
      cfg.policy.migration_penalty = next_u64();
    } else if (arg == "--seed") {
      params.seed = next_u64();
    } else if (arg == "--iterations") {
      params.iterations = next_u32();
    } else if (arg == "--graph") {
      params.graph = next();
    } else if (arg == "--config") {
      show_config = true;
    } else if (arg == "--record") {
      record_path = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--timeline") {
      timeline_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--metrics-interval") {
      metrics_interval = next_u64();
      if (metrics_interval == 0) {
        std::fprintf(stderr, "invalid value for --metrics-interval: must be > 0\n");
        return 2;
      }
    } else if (arg == "--chrome-trace") {
      chrome_trace_path = next();
    } else if (arg == "--mitigation") {
      cfg.mitigation.enabled = true;
    } else if (arg == "--audit") {
      cfg.audit.enabled = true;
    } else if (arg == "--l2") {
      cfg.gpu.l2.enabled = true;
    } else if (arg == "--set") {
      try {
        apply_config_setting(cfg, next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg == "--config-file") {
      std::ifstream f(next());
      if (!f) {
        std::fprintf(stderr, "cannot open config file\n");
        return 2;
      }
      try {
        load_config_stream(cfg, f);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg == "--json") {
      json_output = true;
    } else if (arg == "--classify") {
      classify = true;
    } else if (arg == "--keys") {
      for (const auto& k : config_keys()) std::printf("%s\n", k.c_str());
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  // Paper convention: Baseline runs stock LRU; counter-based schemes LFU.
  if (!eviction_set && cfg.policy.resolved_slug() != "baseline") {
    cfg.mem.eviction = EvictionKind::kLfu;
  }

  if (show_config) std::printf("%s\n", describe(cfg).c_str());

  if (!record_path.empty() && !replay_path.empty()) {
    std::fprintf(stderr, "--record and --replay are mutually exclusive\n");
    return 2;
  }

  try {
    cfg.mem.oversubscription = oversub;

    // Resolve the workload: named generator or trace replay.
    std::unique_ptr<Workload> wl;
    if (!replay_path.empty()) {
      params.trace_file = replay_path;
      wl = make_workload("replay", params);
      workload = wl->name();
      if (const auto* rw = dynamic_cast<const ReplayWorkload*>(wl.get())) {
        // Report under the recorded slug so a replayed run's JSON is
        // byte-comparable with the recording run's.
        workload = rw->meta().workload;
        const std::uint64_t here = config_digest(cfg);
        if (rw->meta().config_digest != 0 && rw->meta().config_digest != here) {
          std::fprintf(stderr,
                       "note: trace was recorded under a different configuration "
                       "(digest %016llx, current %016llx)\n",
                       static_cast<unsigned long long>(rw->meta().config_digest),
                       static_cast<unsigned long long>(here));
        }
      }
    } else {
      wl = make_workload(workload, params);
    }

    Timeline timeline;
    obs::MetricsRecorder metrics;
    std::ofstream record_out;
    std::unique_ptr<TraceWriter> writer;
    if (!record_path.empty()) {
      record_out.open(record_path, std::ios::binary | std::ios::trunc);
      if (!record_out) {
        std::fprintf(stderr, "cannot open %s for writing\n", record_path.c_str());
        return 2;
      }
      TraceWriter::Provenance prov;
      prov.workload = workload;
      prov.seed = params.seed;
      prov.config_digest = config_digest(cfg);
      writer = std::make_unique<TraceWriter>(record_out, std::move(prov));
      cfg.collect_traces = true;
    }
    if (!chrome_trace_path.empty()) cfg.collect_traces = true;
    obs::ChromeTraceWriter chrome(cfg);

    // Compose the requested observation sinks onto one trace stream.
    MultiSink multi;
    TraceSink* sink = nullptr;
    if (writer) sink = writer.get();
    if (!chrome_trace_path.empty()) {
      if (sink != nullptr) {
        multi.add(sink);
        multi.add(&chrome);
        sink = &multi;
      } else {
        sink = &chrome;
      }
    }

    Simulator sim(cfg);
    RunOptions opts;
    opts.trace_sink = sink;
    if (!timeline_path.empty()) opts.timeline = &timeline;
    if (!metrics_path.empty()) {
      opts.metrics = &metrics;
      opts.metrics_interval = metrics_interval;
    }
    const RunResult r = sim.run(*wl, opts);

    if (writer) {
      writer->finalize();
      record_out.close();
      if (!record_out) {
        std::fprintf(stderr, "error: short write to %s\n", record_path.c_str());
        return 1;
      }
      // Keep --json stdout pure JSON (scripts cmp record vs replay output).
      if (!json_output) {
        std::printf("trace:      %llu records in %llu tasks -> %s\n",
                    static_cast<unsigned long long>(writer->records_written()),
                    static_cast<unsigned long long>(writer->tasks_written()),
                    record_path.c_str());
      }
    }
    if (!timeline_path.empty()) {
      std::ofstream out(timeline_path);
      timeline.write_csv(out);
      std::printf("timeline:   %zu samples -> %s\n", timeline.samples().size(),
                  timeline_path.c_str());
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      metrics.write_csv(out);
      std::printf("metrics:    %zu samples -> %s\n", metrics.samples().size(),
                  metrics_path.c_str());
    }
    if (!chrome_trace_path.empty()) {
      std::ofstream out(chrome_trace_path);
      chrome.write(out);
      std::printf("chrome:     %zu events -> %s (chrome://tracing, ui.perfetto.dev)\n",
                  chrome.event_count(), chrome_trace_path.c_str());
    }
    if (json_output) {
      std::ostringstream os;
      write_run_json(os, workload, cfg, oversub, r);
      std::printf("%s", os.str().c_str());
      return 0;
    }
    std::printf("workload:   %s (scale %.2f, footprint %.1f MB, capacity %.1f MB)\n",
                workload.c_str(), params.scale,
                static_cast<double>(r.footprint_bytes) / (1 << 20),
                static_cast<double>(r.capacity_bytes) / (1 << 20));
    std::printf("policy:     %s\n", cfg.policy.slug.empty()
                                        ? to_string(cfg.policy.policy).c_str()
                                        : cfg.policy.slug.c_str());
    std::printf("kernel:     %.3f ms (%llu cycles over %zu launches)\n",
                r.kernel_ms(cfg.gpu.core_clock_ghz),
                static_cast<unsigned long long>(r.stats.kernel_cycles), r.kernels.size());
    std::printf("%s", r.stats.report().c_str());
    if (classify) {
      std::printf("\nper-allocation classification (driver access counters):\n%s",
                  format_profiles(r.allocations).c_str());
    }
  } catch (const TraceError& e) {
    // Malformed / truncated / corrupted trace input: usage-grade failure.
    std::fprintf(stderr, "trace error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
