// uvmsim_fuzz: differential fuzzing CLI. Runs N seeded sim-vs-model
// iterations (check/fuzz.hpp), shrinks every divergence to a minimal
// replayable trace, and optionally dumps the repros as corpus entries.
//
//   uvmsim_fuzz --seed 1 --iters 500                 # production fuzzing
//   uvmsim_fuzz --seed 7 --inject skip-halving ...   # oracle self-test
//   uvmsim_fuzz --replay repro.trc repro.cfg         # re-run one corpus entry
//
// Exit codes: 0 = no divergence, 1 = divergence(s) found (or replay
// diverged), 2 = usage error.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "check/fuzz.hpp"
#include "flag_parse.hpp"
#include "policy/policy_registry.hpp"

namespace {

using namespace uvmsim;

constexpr const char* kUsage =
    "usage: uvmsim_fuzz [options]\n"
    "       uvmsim_fuzz --replay TRACE.trc CONFIG.cfg\n"
    "\n"
    "options:\n"
    "  --seed N            master seed (default 1)\n"
    "  --iters N           fuzz iterations (default 100)\n"
    "  --jobs N            worker threads (default: hardware concurrency)\n"
    "  --policy SLUG       force every generated case onto one registered\n"
    "                      policy (non-paper policies run the oracle in\n"
    "                      skip-decision mode)\n"
    "  --inject FAULT      corrupt the oracle: none | flip-residency |\n"
    "                      skip-halving | round-trip-off-by-one (default none)\n"
    "  --pattern NAME      force every launch onto one stream pattern\n"
    "                      (uniform | thrash | hot-cold | write-burst |\n"
    "                      sat-ramp | ping-pong | coalesce-churn |\n"
    "                      splinter-storm)\n"
    "  --coalescing on|off pin mem.coalescing instead of randomizing it\n"
    "  --trace FILE        seed the campaign from a captured trace (UVMTRB1\n"
    "                      or UVMTRC1): case 0 replays it exactly, later\n"
    "                      cases replay mutants, rotating paper policies\n"
    "  --corpus-out DIR    dump shrunk repros into DIR\n"
    "  --max-findings N    shrink/dump at most N findings (default 8)\n"
    "  --no-shrink         keep findings at original trace size\n"
    "  --quiet             suppress per-batch progress\n"
    "  --replay TRC CFG    run one saved repro in lockstep with the oracle\n"
    "  --help              this text\n";

int usage_error(const char* what, const char* arg) {
  std::fprintf(stderr, "uvmsim_fuzz: %s%s%s\n\n%s", what, arg != nullptr ? ": " : "",
               arg != nullptr ? arg : "", kUsage);
  return 2;
}

int run_replay(const std::string& trc, const std::string& cfg) {
  InjectedFault fault = InjectedFault::kNone;
  const FuzzCase fc = load_case(trc, cfg, &fault);
  const CaseOutcome out = run_case(fc, fault);
  std::printf("replay %s (%llu records, fault=%s): %s\n", trc.c_str(),
              static_cast<unsigned long long>(fc.trace->total_records()), to_cstr(fault),
              out.interesting ? "DIVERGED" : "ok");
  if (out.interesting) {
    std::printf("  %s\n", out.message.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions opts;
  bool quiet = false;
  std::string replay_trc;
  std::string replay_cfg;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "uvmsim_fuzz: %s needs a value\n\n%s", flag, kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (std::strcmp(a, "--seed") == 0) {
      if (!tools::parse_u64(next(a), opts.seed)) return usage_error("bad --seed", argv[i]);
    } else if (std::strcmp(a, "--iters") == 0) {
      if (!tools::parse_u64(next(a), opts.iterations) || opts.iterations == 0)
        return usage_error("bad --iters", argv[i]);
    } else if (std::strcmp(a, "--jobs") == 0) {
      if (!tools::parse_unsigned(next(a), opts.jobs)) return usage_error("bad --jobs", argv[i]);
    } else if (std::strcmp(a, "--policy") == 0) {
      const char* v = next(a);
      PolicyConfig probe;
      if (!apply_policy_name(probe, v)) {
        std::fprintf(stderr, "uvmsim_fuzz: unknown policy '%s' (registered: %s)\n", v,
                     registered_policy_names().c_str());
        return 2;
      }
      opts.policy_slug = v;
    } else if (std::strcmp(a, "--max-findings") == 0) {
      if (!tools::parse_u64(next(a), opts.max_findings))
        return usage_error("bad --max-findings", argv[i]);
    } else if (std::strcmp(a, "--inject") == 0) {
      const char* v = next(a);
      bool ok = false;
      for (InjectedFault f : {InjectedFault::kNone, InjectedFault::kFlipResidency,
                              InjectedFault::kSkipHalving, InjectedFault::kRoundTripOffByOne}) {
        if (std::strcmp(v, to_cstr(f)) == 0) {
          opts.inject = f;
          ok = true;
        }
      }
      if (!ok) return usage_error("bad --inject", v);
    } else if (std::strcmp(a, "--pattern") == 0) {
      const char* v = next(a);
      const int idx = pattern_index(v);
      if (idx < 0) return usage_error("unknown --pattern", v);
      opts.gen.force_pattern = idx;
    } else if (std::strcmp(a, "--coalescing") == 0) {
      const char* v = next(a);
      if (std::strcmp(v, "on") == 0) {
        opts.gen.force_coalescing = 1;
      } else if (std::strcmp(v, "off") == 0) {
        opts.gen.force_coalescing = 0;
      } else {
        return usage_error("bad --coalescing (want on|off)", v);
      }
    } else if (std::strcmp(a, "--trace") == 0) {
      opts.trace_path = next(a);
    } else if (std::strcmp(a, "--corpus-out") == 0) {
      opts.corpus_dir = next(a);
    } else if (std::strcmp(a, "--no-shrink") == 0) {
      opts.shrink = false;
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(a, "--replay") == 0) {
      replay_trc = next(a);
      replay_cfg = next(a);
    } else {
      return usage_error("unknown flag", a);
    }
  }

  try {
    if (!replay_trc.empty()) return run_replay(replay_trc, replay_cfg);

    if (!quiet) {
      opts.progress = [](std::uint64_t done, std::uint64_t total) {
        if (done % 100 == 0 || done == total)
          std::fprintf(stderr, "  fuzz: %llu/%llu cases\n",
                       static_cast<unsigned long long>(done),
                       static_cast<unsigned long long>(total));
      };
    }
    const FuzzReport rep = run_fuzz(opts);
    std::printf("fuzz: seed=%llu iters=%llu inject=%s divergences=%llu\n",
                static_cast<unsigned long long>(opts.seed),
                static_cast<unsigned long long>(rep.iterations), to_cstr(opts.inject),
                static_cast<unsigned long long>(rep.divergences));
    for (const FuzzFinding& f : rep.findings) {
      std::printf("  case %llu: %llu -> %llu records\n",
                  static_cast<unsigned long long>(f.case_index),
                  static_cast<unsigned long long>(f.original_records),
                  static_cast<unsigned long long>(f.reduced_records));
      std::printf("    %s\n", f.message.c_str());
      if (!f.trace_path.empty())
        std::printf("    saved: %s + %s\n", f.trace_path.c_str(), f.config_path.c_str());
    }
    return rep.divergences == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "uvmsim_fuzz: %s\n", e.what());
    return 2;
  }
}
