// uvmsim-analyze — token-level static analysis over the repo's own sources.
//
//   uvmsim-analyze --root .                 # run every rule, text report
//   uvmsim-analyze --rules layering,determinism
//   uvmsim-analyze --json > report.json     # stable-sorted, timestamp-free
//   uvmsim-analyze --baseline tools/uvmsim_analyze.baseline
//   uvmsim-analyze --write-baseline tools/uvmsim_analyze.baseline
//
// Exit codes: 0 clean, 1 findings, 2 usage / I-O error. docs/ANALYSIS.md has
// the rule catalog and the suppression / baseline workflow.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analyze/analysis.hpp"
#include "flag_parse.hpp"

namespace {

constexpr const char* kUsage =
    "usage: uvmsim-analyze [options]\n"
    "  --root DIR            repo root to analyze (default: .)\n"
    "  --rules A,B,...       run only the named rules (default: all)\n"
    "  --json                emit the JSON report instead of text\n"
    "  --baseline FILE       fingerprints in FILE do not fail the run\n"
    "  --write-baseline FILE write current findings as the new baseline and exit 0\n"
    "  --max-findings N      report at most N findings (0 = unlimited)\n"
    "  --list-rules          print the rule catalog and exit\n"
    "  --quiet               print nothing when the tree is clean\n"
    "exit codes: 0 clean, 1 findings, 2 usage or I/O error\n";

[[nodiscard]] std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string write_baseline_path;
  std::uint64_t max_findings = 0;
  bool json = false;
  bool list_rules = false;
  bool quiet = false;
  uvmsim::analyze::AnalysisOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--root") {
      const char* v = value();
      if (v == nullptr) {
        std::cerr << "uvmsim-analyze: --root needs a directory\n" << kUsage;
        return 2;
      }
      root = v;
    } else if (arg == "--rules") {
      const char* v = value();
      if (v == nullptr) {
        std::cerr << "uvmsim-analyze: --rules needs a comma-separated list\n" << kUsage;
        return 2;
      }
      opts.rules = split_csv(v);
    } else if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) {
        std::cerr << "uvmsim-analyze: --baseline needs a file\n" << kUsage;
        return 2;
      }
      baseline_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = value();
      if (v == nullptr) {
        std::cerr << "uvmsim-analyze: --write-baseline needs a file\n" << kUsage;
        return 2;
      }
      write_baseline_path = v;
    } else if (arg == "--max-findings") {
      const char* v = value();
      if (v == nullptr || !uvmsim::tools::parse_u64(v, max_findings)) {
        std::cerr << "uvmsim-analyze: --max-findings needs a non-negative integer\n" << kUsage;
        return 2;
      }
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "uvmsim-analyze: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
  }

  if (list_rules) {
    for (const auto& rule : uvmsim::analyze::make_default_rules())
      std::cout << rule->name() << "\n    " << rule->description() << "\n";
    return 0;
  }

  if (!baseline_path.empty()) {
    std::ifstream is(baseline_path);
    if (!is) {
      std::cerr << "uvmsim-analyze: cannot read baseline '" << baseline_path << "'\n";
      return 2;
    }
    opts.baseline = uvmsim::analyze::load_baseline(is);
  }

  uvmsim::analyze::AnalysisResult result;
  try {
    const uvmsim::analyze::Corpus corpus = uvmsim::analyze::load_corpus(root);
    result = uvmsim::analyze::run_analysis(corpus, opts);
  } catch (const std::exception& e) {
    std::cerr << "uvmsim-analyze: " << e.what() << "\n";
    return 2;
  }

  if (!write_baseline_path.empty()) {
    std::ofstream os(write_baseline_path);
    if (!os) {
      std::cerr << "uvmsim-analyze: cannot write baseline '" << write_baseline_path << "'\n";
      return 2;
    }
    uvmsim::analyze::write_baseline(os, result.findings);
    std::cout << "uvmsim-analyze: wrote " << result.findings.size() << " fingerprint"
              << (result.findings.size() == 1 ? "" : "s") << " to " << write_baseline_path
              << "\n";
    return 0;
  }

  if (max_findings != 0 && result.findings.size() > max_findings)
    result.findings.resize(max_findings);

  if (json) {
    uvmsim::analyze::write_json_report(std::cout, result);
  } else if (!quiet || !result.clean()) {
    uvmsim::analyze::write_text_report(std::cout, result);
  }
  return result.clean() ? 0 : 1;
}
