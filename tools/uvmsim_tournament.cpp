// uvmsim_tournament: race every registered migration policy across a
// deterministic streamgen scenario corpus and print a leaderboard.
//
//   uvmsim-tournament --seed 1 --scenarios 8
//   uvmsim-tournament --policies adaptive,tuned,learned --out-csv board.csv
//   uvmsim-tournament --seed 3 --jobs 2 --out-json board.json
//
// The CSV/JSON artifacts are byte-identical for any --jobs value; wall time
// goes to stdout only. Exit codes: 0 = ok, 1 = a cell failed, 2 = usage.
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/tournament.hpp"
#include "flag_parse.hpp"
#include "policy/policy_registry.hpp"

namespace {

using namespace uvmsim;

constexpr const char* kUsage =
    "usage: uvmsim-tournament [options]\n"
    "\n"
    "options:\n"
    "  --seed N          scenario corpus seed (default 1)\n"
    "  --scenarios N     streamgen scenarios in the corpus (default 8)\n"
    "  --jobs N          worker threads (default: hardware concurrency)\n"
    "  --policies CSV    comma-separated policy slugs to enter\n"
    "                    (default: every registered policy)\n"
    "  --out-csv FILE    write the leaderboard CSV to FILE\n"
    "  --out-json FILE   write the full result (scenarios, cells,\n"
    "                    leaderboard) as JSON to FILE\n"
    "  --quiet           suppress per-cell progress\n"
    "  --help            this text\n";

int usage_error(const char* what, const char* arg) {
  std::fprintf(stderr, "uvmsim-tournament: %s%s%s\n\n%s", what, arg != nullptr ? ": " : "",
               arg != nullptr ? arg : "", kUsage);
  return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(csv);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  TournamentOptions opts;
  std::string out_csv;
  std::string out_json;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "uvmsim-tournament: %s needs a value\n\n%s", flag, kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (std::strcmp(a, "--seed") == 0) {
      if (!tools::parse_u64(next(a), opts.seed)) return usage_error("bad --seed", argv[i]);
    } else if (std::strcmp(a, "--scenarios") == 0) {
      if (!tools::parse_u64(next(a), opts.scenarios) || opts.scenarios == 0)
        return usage_error("bad --scenarios", argv[i]);
    } else if (std::strcmp(a, "--jobs") == 0) {
      if (!tools::parse_unsigned(next(a), opts.jobs)) return usage_error("bad --jobs", argv[i]);
    } else if (std::strcmp(a, "--policies") == 0) {
      opts.policies = split_csv(next(a));
      if (opts.policies.empty()) return usage_error("bad --policies", argv[i]);
      for (const std::string& slug : opts.policies) {
        PolicyConfig probe;
        if (!apply_policy_name(probe, slug)) {
          std::fprintf(stderr, "uvmsim-tournament: unknown policy '%s' (registered: %s)\n",
                       slug.c_str(), registered_policy_names().c_str());
          return 2;
        }
      }
    } else if (std::strcmp(a, "--out-csv") == 0) {
      out_csv = next(a);
    } else if (std::strcmp(a, "--out-json") == 0) {
      out_json = next(a);
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else {
      return usage_error("unknown flag", a);
    }
  }

  try {
    if (!quiet) {
      opts.progress = [](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "  tournament: %zu/%zu cells\n", done, total);
      };
    }
    const TournamentResult result = run_tournament(opts);

    std::ostringstream board;
    write_tournament_csv(board, result);
    std::printf("tournament: seed=%llu scenarios=%zu policies=%zu cells=%zu "
                "(%.0f ms wall, %u jobs)\n",
                static_cast<unsigned long long>(result.seed), result.scenarios.size(),
                result.leaderboard.size(), result.cells.size(), result.wall_ms, result.jobs);
    std::printf("%s", board.str().c_str());

    if (!out_csv.empty()) {
      std::ofstream out(out_csv);
      if (!out) {
        std::fprintf(stderr, "uvmsim-tournament: cannot open %s\n", out_csv.c_str());
        return 2;
      }
      write_tournament_csv(out, result);
      std::printf("csv:  -> %s\n", out_csv.c_str());
    }
    if (!out_json.empty()) {
      std::ofstream out(out_json);
      if (!out) {
        std::fprintf(stderr, "uvmsim-tournament: cannot open %s\n", out_json.c_str());
        return 2;
      }
      write_tournament_json(out, result);
      std::printf("json: -> %s\n", out_json.c_str());
    }

    std::size_t failed = 0;
    for (const TournamentRow& row : result.leaderboard) failed += row.failed;
    if (failed > 0) {
      std::fprintf(stderr, "uvmsim-tournament: %zu cell(s) failed\n", failed);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "uvmsim-tournament: %s\n", e.what());
    return 2;
  }
}
