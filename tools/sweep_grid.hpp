// The paper's full evaluation grid (uvmsim-sweep's run list), factored out so
// the sweep tool and the golden-output integration test build the *same*
// requests: 8 workloads x {Baseline, Always, Oversub, Adaptive} x
// oversubscription {fits, 1.25, 1.50}, plus the Fig 4 ts sweep and the Fig 8
// penalty sweep at 125 %. Rows are emitted in this grid order.
#pragma once

#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/runner.hpp"
#include "workloads/workload.hpp"

namespace uvmsim::tools {

inline SimConfig sweep_scheme_cfg(PolicyKind policy) {
  SimConfig cfg;
  cfg.policy.policy = policy;
  cfg.mem.eviction =
      policy == PolicyKind::kFirstTouch ? EvictionKind::kLru : EvictionKind::kLfu;
  return cfg;
}

inline std::vector<RunRequest> build_sweep_grid(double scale) {
  WorkloadParams params;
  params.scale = scale;

  std::vector<RunRequest> grid;
  auto add = [&](const std::string& name, const SimConfig& cfg, double oversub) {
    RunRequest req;
    req.workload = name;
    req.params = params;
    req.config = cfg;
    req.oversub = oversub;
    grid.push_back(std::move(req));
  };

  for (const auto& name : workload_names()) {
    // Figs 1, 5, 6, 7: scheme x oversubscription grid.
    for (const PolicyKind policy : {PolicyKind::kFirstTouch, PolicyKind::kStaticAlways,
                                    PolicyKind::kStaticOversub, PolicyKind::kAdaptive}) {
      for (const double oversub : {0.0, 1.25, 1.5}) {
        add(name, sweep_scheme_cfg(policy), oversub);
      }
    }
    // Fig 4: ts sweep under Always at 125 %.
    for (const std::uint32_t ts : {16u, 32u}) {
      SimConfig cfg = sweep_scheme_cfg(PolicyKind::kStaticAlways);
      cfg.policy.static_threshold = ts;
      add(name, cfg, 1.25);
    }
    // Fig 8: penalty sweep under Adaptive at 125 %.
    for (const std::uint64_t p : {2ull, 4ull, 1048576ull}) {
      SimConfig cfg = sweep_scheme_cfg(PolicyKind::kAdaptive);
      cfg.policy.migration_penalty = p;
      add(name, cfg, 1.25);
    }
  }
  return grid;
}

}  // namespace uvmsim::tools
