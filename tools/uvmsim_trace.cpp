// uvmsim-trace: inspect, verify and convert captured traces.
//
//   uvmsim-trace info bfs.trb            # header, launches, provenance
//   uvmsim-trace verify bfs.trb          # full content-hash + structure check
//   uvmsim-trace convert bfs.trc bfs.trb # legacy UVMTRC1 -> binary UVMTRB1
//   uvmsim-trace convert bfs.trb bfs.trc # binary -> legacy (direction by magic)
//
// Exit codes: 0 ok, 2 malformed input / bad usage, 1 internal error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include <uvmsim/uvmsim.hpp>

namespace {

using namespace uvmsim;

void usage() {
  std::printf(
      "usage: uvmsim-trace <command> [args]\n"
      "  info FILE           print trace metadata (format, launches, records)\n"
      "  verify FILE         recompute the content hash and re-decode every\n"
      "                      chunk; non-zero exit on any corruption\n"
      "  convert IN OUT      convert between legacy UVMTRC1 and binary\n"
      "                      UVMTRB1 (direction picked by IN's magic)\n"
      "Formats are documented in docs/TRACES.md.\n");
}

/// Sniff the 8-byte magic; returns 'b' (UVMTRB1), 'c' (UVMTRC1) or 0.
char sniff(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  if (!in.read(magic, sizeof magic)) return 0;
  if (std::memcmp(magic, kTrbMagic.data(), sizeof magic) == 0) return 'b';
  if (std::memcmp(magic, "UVMTRC1", 8) == 0) return 'c';
  return 0;
}

int cmd_info(const std::string& path) {
  const char kind = sniff(path);
  if (kind == 'c') {
    const RecordedTrace t = load_any_trace(path);  // wraps errors in TraceError
    std::printf("format:      UVMTRC1 (legacy)\n");
    std::printf("allocations: %zu\n", t.allocations.size());
    std::printf("launches:    %zu\n", t.launches.size());
    std::printf("records:     %llu\n", static_cast<unsigned long long>(t.total_records()));
    return 0;
  }
  TraceReader reader(path);  // throws TraceError on anything malformed
  const TraceMeta& m = reader.meta();
  std::printf("format:      UVMTRB1 v%u\n", m.version);
  std::printf("workload:    %s\n", m.workload.empty() ? "(unknown)" : m.workload.c_str());
  std::printf("seed:        %llu\n", static_cast<unsigned long long>(m.seed));
  std::printf("config:      %016llx\n", static_cast<unsigned long long>(m.config_digest));
  std::printf("allocations: %zu\n", m.allocations.size());
  std::printf("launches:    %zu\n", m.launches.size());
  std::printf("records:     %llu\n", static_cast<unsigned long long>(m.total_records));
  std::printf("chunks:      %zu\n", reader.chunks().size());
  std::printf("file bytes:  %llu\n", static_cast<unsigned long long>(reader.file_bytes()));
  for (const TraceLaunchInfo& l : m.launches) {
    std::printf("  launch %-20s %10llu tasks %12llu records\n", l.kernel.c_str(),
                static_cast<unsigned long long>(l.num_tasks),
                static_cast<unsigned long long>(l.num_records));
  }
  return 0;
}

int cmd_verify(const std::string& path) {
  if (sniff(path) == 'c') {
    // Legacy traces carry no checksum; a full parse is the strongest check.
    const RecordedTrace t = load_any_trace(path);
    std::printf("ok: UVMTRC1, %llu records (no checksum in legacy format)\n",
                static_cast<unsigned long long>(t.total_records()));
    return 0;
  }
  TraceReader reader(path);
  reader.verify();  // throws TraceError on hash or structure mismatch
  std::printf("ok: UVMTRB1, %llu records, content hash verified\n",
              static_cast<unsigned long long>(reader.meta().total_records));
  return 0;
}

int cmd_convert(const std::string& in_path, const std::string& out_path) {
  const char kind = sniff(in_path);
  if (kind == 'c') {
    const RecordedTrace t = load_any_trace(in_path);
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) throw TraceError("cannot open " + out_path + " for writing");
    TraceWriter::Provenance prov;
    prov.workload = "uvmtrc1:" + in_path;
    write_trb(out, t, prov);
    if (!out) throw TraceError("short write to " + out_path);
    std::printf("wrote UVMTRB1 %s (%llu records)\n", out_path.c_str(),
                static_cast<unsigned long long>(t.total_records()));
    return 0;
  }
  // Binary -> legacy: re-expand into a RecordedTrace and save.
  const RecordedTrace t = read_trb_as_recorded(in_path);
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) throw TraceError("cannot open " + out_path + " for writing");
  t.save(out);
  if (!out) throw TraceError("short write to " + out_path);
  std::printf("wrote UVMTRC1 %s (%llu records)\n", out_path.c_str(),
              static_cast<unsigned long long>(t.total_records()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "--help" || cmd == "-h") {
      usage();
      return 0;
    }
    if (cmd == "info" && argc == 3) return cmd_info(argv[2]);
    if (cmd == "verify" && argc == 3) return cmd_verify(argv[2]);
    if (cmd == "convert" && argc == 4) return cmd_convert(argv[2], argv[3]);
    usage();
    return 2;
  } catch (const TraceError& e) {
    std::fprintf(stderr, "trace error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
