// uvmsim-sweep: regenerate the paper's full evaluation grid as tidy CSV for
// downstream plotting (each figure of the paper is a slice of this data).
//
//   uvmsim-sweep --out results.csv [--scale 1.0] [--quick]
//
// Grid: 8 workloads x {Baseline, Always, Oversub, Adaptive}
//       x oversubscription {fits, 1.25, 1.50}
//       plus the Fig 4 ts sweep and Fig 8 penalty sweep at 125 %.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include <uvmsim/uvmsim.hpp>

#include "report/run_csv.hpp"

namespace {

using namespace uvmsim;

SimConfig scheme_cfg(PolicyKind policy) {
  SimConfig cfg;
  cfg.policy.policy = policy;
  cfg.mem.eviction =
      policy == PolicyKind::kFirstTouch ? EvictionKind::kLru : EvictionKind::kLfu;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "uvmsim_sweep.csv";
  double scale = 1.0;
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: uvmsim-sweep [--out FILE] [--scale F] [--quick]\n");
      return 2;
    }
  }
  if (quick) scale = std::min(scale, 0.2);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  write_run_csv_header(out);

  WorkloadParams params;
  params.scale = scale;
  std::size_t runs = 0;
  auto emit = [&](const std::string& name, const SimConfig& cfg, double oversub) {
    const RunResult r = run_workload(name, cfg, oversub, params);
    append_run_csv(out, name, cfg, oversub, r);
    ++runs;
    std::printf("\r%zu runs...", runs);
    std::fflush(stdout);
  };

  for (const auto& name : workload_names()) {
    // Figs 1, 5, 6, 7: scheme x oversubscription grid.
    for (const PolicyKind policy : {PolicyKind::kFirstTouch, PolicyKind::kStaticAlways,
                                    PolicyKind::kStaticOversub, PolicyKind::kAdaptive}) {
      for (const double oversub : {0.0, 1.25, 1.5}) {
        emit(name, scheme_cfg(policy), oversub);
      }
    }
    // Fig 4: ts sweep under Always at 125 %.
    for (const std::uint32_t ts : {16u, 32u}) {
      SimConfig cfg = scheme_cfg(PolicyKind::kStaticAlways);
      cfg.policy.static_threshold = ts;
      emit(name, cfg, 1.25);
    }
    // Fig 8: penalty sweep under Adaptive at 125 %.
    for (const std::uint64_t p : {2ull, 4ull, 1048576ull}) {
      SimConfig cfg = scheme_cfg(PolicyKind::kAdaptive);
      cfg.policy.migration_penalty = p;
      emit(name, cfg, 1.25);
    }
  }

  std::printf("\nwrote %zu runs to %s\n", runs, out_path.c_str());
  return 0;
}
