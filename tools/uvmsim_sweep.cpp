// uvmsim-sweep: regenerate the paper's full evaluation grid as tidy CSV for
// downstream plotting (each figure of the paper is a slice of this data).
//
//   uvmsim-sweep --out results.csv [--scale 1.0] [--jobs N] [--quick]
//                [--metrics-dir DIR]
//
// Grid: 8 workloads x {Baseline, Always, Oversub, Adaptive}
//       x oversubscription {fits, 1.25, 1.50}
//       plus the Fig 4 ts sweep and Fig 8 penalty sweep at 125 %.
//
// Runs execute on the parallel batch engine (sim/runner.hpp). Rows are
// written in grid order after the batch completes, and every run is fully
// seeded by its request, so the CSV is byte-identical for any --jobs value.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include <uvmsim/uvmsim.hpp>

#include "flag_parse.hpp"
#include "report/run_csv.hpp"
#include "sweep_grid.hpp"

namespace {

using namespace uvmsim;

constexpr const char* kUsage =
    "usage: uvmsim-sweep [--out FILE] [--scale F] [--jobs N] [--quick]\n"
    "                    [--metrics-dir DIR]\n"
    "  --out FILE   output CSV path (default uvmsim_sweep.csv)\n"
    "  --scale F    workload footprint scale, F > 0 (default 1.0)\n"
    "  --jobs N     worker threads, N >= 1 (default: hardware concurrency)\n"
    "  --quick      cap scale at 0.2 for a fast smoke sweep\n"
    "  --metrics-dir DIR  also write one per-run metric time-series CSV per\n"
    "               grid entry into DIR; all series sample on the shared\n"
    "               clock (multiples of 100000 cycles) so rows align\n";

int usage_error(const char* flag, const char* value) {
  if (value != nullptr)
    std::fprintf(stderr, "invalid value for %s: '%s'\n", flag, value);
  else
    std::fprintf(stderr, "missing value for %s\n", flag);
  std::fputs(kUsage, stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "uvmsim_sweep.csv";
  std::string metrics_dir;
  double scale = 1.0;
  unsigned jobs = 0;  // 0 = hardware concurrency
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--out") {
      if (value == nullptr) return usage_error("--out", nullptr);
      out_path = argv[++i];
    } else if (arg == "--scale") {
      // Strict parse (tools/flag_parse.hpp): atof would map garbage to 0.
      if (value == nullptr || !tools::parse_double(value, scale) || scale <= 0.0)
        return usage_error("--scale", value);
      ++i;
    } else if (arg == "--jobs") {
      if (value == nullptr || !tools::parse_unsigned(value, jobs) || jobs == 0 ||
          jobs > 1u << 20)
        return usage_error("--jobs", value);
      ++i;
    } else if (arg == "--metrics-dir") {
      if (value == nullptr) return usage_error("--metrics-dir", nullptr);
      metrics_dir = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (quick) scale = std::min(scale, 0.2);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }

  // The grid lives in tools/sweep_grid.hpp so the golden-output integration
  // test runs exactly these requests.
  const std::vector<RunRequest> grid = tools::build_sweep_grid(scale);

  BatchOptions opts;
  opts.jobs = jobs;
  opts.on_done = [](const BatchEntry&, std::size_t done, std::size_t) {
    std::printf("\r%zu runs...", done);
    std::fflush(stdout);
  };

  // One pre-allocated recorder per grid entry: each run samples its own
  // recorder on the worker thread (no sharing), and all series sit on the
  // shared clock (RunOptions::metrics_interval multiples) so rows align.
  std::vector<obs::MetricsRecorder> recorders;
  if (!metrics_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(metrics_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", metrics_dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
    recorders.resize(grid.size());
    opts.make_options = [&recorders](const RunRequest&, std::size_t index) {
      RunOptions ro;
      ro.metrics = &recorders[index];
      return ro;
    };
  }

  const BatchResult batch = run_batch(grid, opts);

  write_run_csv_header(out);
  std::size_t written = 0;
  for (const BatchEntry& e : batch.entries) {
    if (!e.ok()) {
      std::fprintf(stderr, "\n%s (oversub %.2f): %s\n", e.request.workload.c_str(),
                   e.request.oversub, e.error.c_str());
      continue;
    }
    append_run_csv(out, e.request.workload, e.request.config, e.request.oversub, e.result);
    ++written;
  }

  std::printf("\nwrote %zu runs to %s (%u jobs, %.1f s wall)\n", written, out_path.c_str(),
              batch.jobs, batch.wall_ms / 1000.0);

  if (!metrics_dir.empty()) {
    std::size_t series = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (!batch.entries[i].ok()) continue;
      const RunRequest& req = grid[i];
      char name[256];
      std::snprintf(name, sizeof(name), "%03zu_%s_%s_%.4g.csv", i,
                    req.workload.c_str(), req.config.policy.resolved_slug().c_str(),
                    req.oversub);
      std::ofstream mout(std::filesystem::path(metrics_dir) / name);
      if (!mout) {
        std::fprintf(stderr, "cannot open %s/%s\n", metrics_dir.c_str(), name);
        return 1;
      }
      recorders[i].write_csv(mout);
      ++series;
    }
    std::printf("wrote %zu metric series to %s/\n", series, metrics_dir.c_str());
  }
  if (!batch.all_ok()) {
    std::fprintf(stderr, "%zu of %zu runs failed\n", batch.failed, batch.entries.size());
    return 1;
  }
  return 0;
}
