// Strict command-line numeric parsing shared by the uvmsim tools.
//
// std::atof / std::atoi silently map garbage to 0, so a typo'd
// "--scale 0..5" or "--ts 8x" used to run a degenerate experiment instead
// of failing. These parsers accept a token only when the ENTIRE string is a
// finite in-range number; callers layer their own domain checks (> 0,
// bounded, ...) on top.
#pragma once

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdint>
#include <cstdlib>

namespace uvmsim::tools {

/// Whole-token finite double. Rejects empty, trailing junk, inf/nan,
/// overflow.
inline bool parse_double(const char* s, double& out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE || !std::isfinite(v)) return false;
  out = v;
  return true;
}

/// Whole-token decimal unsigned 64-bit. Rejects a leading '-' explicitly:
/// strtoull would happily wrap "-1" to 2^64-1.
inline bool parse_u64(const char* s, std::uint64_t& out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

inline bool parse_u32(const char* s, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > UINT32_MAX) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

inline bool parse_unsigned(const char* s, unsigned& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > UINT_MAX) return false;
  out = static_cast<unsigned>(v);
  return true;
}

}  // namespace uvmsim::tools
